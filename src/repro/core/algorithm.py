"""Collective algorithms: the (Q, T) candidate solutions and their semantics.

Section 3.3 of the paper defines a candidate solution as a pair ``(Q, T)``
where ``Q = r_0 .. r_{S-1}`` gives the number of rounds per step and ``T``
is a set of sends ``(c, n, n', s)``.  This module holds the executable
representation of such solutions:

* :class:`Send` — one chunk transfer (optionally a reducing transfer),
* :class:`Step` — a synchronous step: its round count and its sends,
* :class:`Algorithm` — the full schedule together with the instance data
  needed to verify it (topology, pre/post conditions, chunk counts).

Verification implements the run semantics ``V_0 .. V_S`` from the paper,
generalized with *contribution tracking* so the same machinery validates
combining algorithms produced by the inversion of Section 3.5: the state
maps every ``(chunk, node)`` to the set of original inputs folded into that
buffer.  A non-combining collective is correct when every post-condition
pair holds *some* copy; a combining collective is correct when it holds a
copy containing *every* contribution exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..collectives import Placement
from ..topology import Topology

SendOp = str  # "copy" or "reduce"


class AlgorithmError(Exception):
    """Raised when a schedule violates the SynColl semantics."""


@dataclass(frozen=True)
class Send:
    """A single chunk transfer within a step.

    ``op == "copy"`` overwrites the destination buffer with the source's
    version of the chunk (non-combining collectives and the Allgather phase
    of Allreduce).  ``op == "reduce"`` folds the source's version into the
    destination buffer (the combining phase produced by inversion).
    """

    chunk: int
    src: int
    dst: int
    op: SendOp = "copy"

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise AlgorithmError(f"send of chunk {self.chunk} from node {self.src} to itself")
        if self.op not in ("copy", "reduce"):
            raise AlgorithmError(f"unknown send op {self.op!r}")

    def reversed(self, op: SendOp = "reduce") -> "Send":
        """The inverted send used by the combining-collective reduction."""
        return Send(chunk=self.chunk, src=self.dst, dst=self.src, op=op)


@dataclass(frozen=True)
class Step:
    """A synchronous step: ``rounds`` rounds and the sends executed in it."""

    rounds: int
    sends: Tuple[Send, ...] = ()

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise AlgorithmError("negative round count")

    @property
    def num_sends(self) -> int:
        return len(self.sends)

    def sends_on_link(self, src: int, dst: int) -> List[Send]:
        return [s for s in self.sends if s.src == src and s.dst == dst]


# Contribution state: which original inputs are folded into each buffer.
ContributionState = Dict[Tuple[int, int], FrozenSet[int]]


@dataclass
class Algorithm:
    """A synthesized (or hand-written) collective algorithm.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"allgather_dgx1_c6_s3_r7"``.
    collective:
        Collective name this algorithm implements.
    topology:
        The topology it was synthesized for.
    chunks_per_node:
        The per-node chunk count ``C`` (cost model denominator).
    num_chunks:
        The global chunk count ``G``.
    precondition / postcondition:
        Chunk placements before and after.
    steps:
        The schedule.
    combining:
        True when the post-condition requires fully-reduced buffers.
    """

    name: str
    collective: str
    topology: Topology
    chunks_per_node: int
    num_chunks: int
    precondition: Placement
    postcondition: Placement
    steps: List[Step] = field(default_factory=list)
    combining: bool = False
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Basic quantities
    # ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        """The latency cost S."""
        return len(self.steps)

    @property
    def total_rounds(self) -> int:
        """The total rounds R (sum of per-step rounds)."""
        return sum(step.rounds for step in self.steps)

    @property
    def bandwidth_cost(self) -> Fraction:
        """The bandwidth cost R / C."""
        return Fraction(self.total_rounds, self.chunks_per_node)

    @property
    def rounds_per_step(self) -> List[int]:
        """The sequence Q of the candidate solution."""
        return [step.rounds for step in self.steps]

    @property
    def total_sends(self) -> int:
        return sum(step.num_sends for step in self.steps)

    @property
    def synchrony(self) -> int:
        """The k for which this algorithm is k-synchronous (R - S)."""
        return self.total_rounds - self.num_steps

    def signature(self) -> Tuple[int, int, int]:
        """The (C, S, R) triple used throughout the paper's tables."""
        return (self.chunks_per_node, self.num_steps, self.total_rounds)

    def cost(self, size_bytes: float, alpha: Optional[float] = None, beta: Optional[float] = None) -> float:
        """Alpha-beta cost for an input of ``size_bytes`` bytes per node.

        ``S * alpha + (R / C) * L * beta`` (Section 3.6).  ``alpha`` and
        ``beta`` default to the topology's parameters.
        """
        from .cost import algorithm_cost

        alpha = self.topology.alpha if alpha is None else alpha
        beta = self.topology.beta if beta is None else beta
        return algorithm_cost(
            steps=self.num_steps,
            rounds=self.total_rounds,
            chunks=self.chunks_per_node,
            size_bytes=size_bytes,
            alpha=alpha,
            beta=beta,
        )

    # ------------------------------------------------------------------
    # Run semantics and verification
    # ------------------------------------------------------------------
    def initial_state(self) -> ContributionState:
        """The contribution state corresponding to the precondition.

        For non-combining algorithms every resident copy of a chunk is the
        same data, so the contribution set is the singleton of the chunk's
        canonical origin.  For combining algorithms every resident copy is
        that node's *own* partial input.
        """
        state: ContributionState = {}
        for (chunk, node) in self.precondition:
            if self.combining:
                state[(chunk, node)] = frozenset({node})
            else:
                state[(chunk, node)] = frozenset({self._origin(chunk)})
        return state

    def _origin(self, chunk: int) -> int:
        origins = sorted(n for (c, n) in self.precondition if c == chunk)
        if not origins:
            raise AlgorithmError(f"chunk {chunk} has no origin in the precondition")
        return origins[0]

    def run(self) -> List[ContributionState]:
        """Execute the schedule, returning the state after every step.

        Raises :class:`AlgorithmError` if any send uses a chunk that is not
        present at its source at that step, or merges overlapping
        contributions (which would double-count inputs in a reduction).
        """
        state = self.initial_state()
        history = [dict(state)]
        for index, step in enumerate(self.steps):
            next_state: ContributionState = dict(state)
            for send in step.sends:
                key_src = (send.chunk, send.src)
                if key_src not in state:
                    raise AlgorithmError(
                        f"step {index}: node {send.src} sends chunk {send.chunk} "
                        f"it does not hold"
                    )
                incoming = state[key_src]
                key_dst = (send.chunk, send.dst)
                if send.op == "copy":
                    next_state[key_dst] = incoming
                else:  # reduce
                    existing = next_state.get(key_dst, frozenset())
                    overlap = existing & incoming
                    if overlap:
                        raise AlgorithmError(
                            f"step {index}: reducing chunk {send.chunk} at node "
                            f"{send.dst} double-counts contributions {sorted(overlap)}"
                        )
                    next_state[key_dst] = existing | incoming
            state = next_state
            history.append(dict(state))
        return history

    def check_bandwidth(self) -> None:
        """Check constraint C5: per-step link loads within ``b * r_s``."""
        for index, step in enumerate(self.steps):
            loads: Dict[Tuple[int, int], int] = {}
            for send in step.sends:
                loads[(send.src, send.dst)] = loads.get((send.src, send.dst), 0) + 1
            link_set = self.topology.links()
            for link, load in loads.items():
                if link not in link_set:
                    raise AlgorithmError(
                        f"step {index}: send scheduled on non-existent link {link}"
                    )
            for constraint in self.topology.constraints:
                total = sum(loads.get(link, 0) for link in constraint.links)
                allowed = constraint.bandwidth * step.rounds
                if total > allowed:
                    raise AlgorithmError(
                        f"step {index}: {total} sends over constraint "
                        f"{constraint.name or sorted(constraint.links)} exceed "
                        f"bandwidth {constraint.bandwidth} x {step.rounds} rounds"
                    )

    def verify(self) -> None:
        """Full validity check: run semantics, bandwidth, postcondition."""
        self.check_bandwidth()
        final_state = self.run()[-1]
        if self.combining:
            expected = self._full_contributions()
            for (chunk, node) in self.postcondition:
                got = final_state.get((chunk, node))
                if got is None:
                    raise AlgorithmError(
                        f"postcondition violated: chunk {chunk} missing at node {node}"
                    )
                if got != expected[chunk]:
                    missing = sorted(expected[chunk] - got)
                    raise AlgorithmError(
                        f"postcondition violated: chunk {chunk} at node {node} is "
                        f"missing contributions {missing}"
                    )
        else:
            for (chunk, node) in self.postcondition:
                if (chunk, node) not in final_state:
                    raise AlgorithmError(
                        f"postcondition violated: chunk {chunk} never reaches node {node}"
                    )

    def _full_contributions(self) -> Dict[int, FrozenSet[int]]:
        full: Dict[int, Set[int]] = {}
        for (chunk, node) in self.precondition:
            full.setdefault(chunk, set()).add(node)
        return {chunk: frozenset(nodes) for chunk, nodes in full.items()}

    def is_valid(self) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify()
            return True
        except AlgorithmError:
            return False

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def renamed(self, name: str) -> "Algorithm":
        return replace(self, name=name)

    def pruned(self) -> "Algorithm":
        """Drop sends that do not contribute to the postcondition.

        The SMT encoding does not forbid "junk" sends that deliver a chunk
        to a node that neither needs it nor forwards it; they satisfy the
        constraints but waste bandwidth and break the copy-inversion used
        to derive Scatter from Gather.  This backward sweep keeps exactly
        the sends on a dependency path to the postcondition.  Only defined
        for non-combining algorithms (combining schedules need every
        contribution by construction).
        """
        if self.combining:
            raise AlgorithmError("pruning is only defined for non-combining algorithms")
        needed: Set[Tuple[int, int]] = set(self.postcondition)
        kept_per_step: List[List[Send]] = [[] for _ in self.steps]
        delivered: Set[Tuple[int, int]] = set()
        for index in range(len(self.steps) - 1, -1, -1):
            for send in self.steps[index].sends:
                key = (send.chunk, send.dst)
                if key in self.precondition:
                    continue  # redundant delivery of an input chunk
                if key not in needed or key in delivered:
                    continue
                delivered.add(key)
                kept_per_step[index].append(send)
                needed.add((send.chunk, send.src))
        new_steps = [
            Step(rounds=step.rounds, sends=tuple(
                sorted(kept_per_step[i], key=lambda s: (s.src, s.dst, s.chunk))
            ))
            for i, step in enumerate(self.steps)
        ]
        return replace(self, steps=new_steps)

    def all_sends(self) -> List[Tuple[int, Send]]:
        """All sends as (step_index, send) pairs."""
        return [(i, send) for i, step in enumerate(self.steps) for send in step.sends]

    def sends_per_link(self) -> Dict[Tuple[int, int], int]:
        counts: Dict[Tuple[int, int], int] = {}
        for _, send in self.all_sends():
            counts[(send.src, send.dst)] = counts.get((send.src, send.dst), 0) + 1
        return counts

    def concatenate(self, other: "Algorithm", name: Optional[str] = None) -> "Algorithm":
        """Sequential composition: run ``self`` then ``other``.

        Used to build Allreduce = Reducescatter ; Allgather.  The caller is
        responsible for the chunk namespaces matching; the result keeps this
        algorithm's precondition and the other's postcondition.
        """
        if self.topology.num_nodes != other.topology.num_nodes:
            raise AlgorithmError("cannot concatenate algorithms over different node counts")
        if self.num_chunks != other.num_chunks:
            raise AlgorithmError(
                f"cannot concatenate algorithms over different chunk counts "
                f"({self.num_chunks} vs {other.num_chunks})"
            )
        return Algorithm(
            name=name or f"{self.name}+{other.name}",
            collective=f"{self.collective}+{other.collective}",
            topology=self.topology,
            chunks_per_node=self.chunks_per_node,
            num_chunks=self.num_chunks,
            precondition=self.precondition,
            postcondition=other.postcondition,
            steps=list(self.steps) + list(other.steps),
            combining=self.combining or other.combining,
            metadata={**self.metadata, **other.metadata},
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable schedule dump used by the examples."""
        c, s, r = self.signature()
        lines = [
            f"Algorithm {self.name!r}: {self.collective} on {self.topology.name}",
            f"  chunks/node C={c}, steps S={s}, rounds R={r} "
            f"(bandwidth cost {self.bandwidth_cost}, {self.synchrony}-synchronous)",
        ]
        for index, step in enumerate(self.steps):
            lines.append(f"  step {index} ({step.rounds} round(s), {step.num_sends} send(s)):")
            for send in sorted(step.sends, key=lambda x: (x.src, x.dst, x.chunk)):
                arrow = "=>" if send.op == "reduce" else "->"
                lines.append(f"    chunk {send.chunk:3d}: {send.src} {arrow} {send.dst}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly serialization (used by examples and the CLI).

        ``metadata`` is included only when non-empty so that algorithms
        without provenance keep the byte-identical serialization the cache
        and the determinism tests rely on.
        """
        data = {
            "name": self.name,
            "collective": self.collective,
            "topology": self.topology.to_dict(),
            "chunks_per_node": self.chunks_per_node,
            "num_chunks": self.num_chunks,
            "combining": self.combining,
            "precondition": sorted(self.precondition),
            "postcondition": sorted(self.postcondition),
            "steps": [
                {
                    "rounds": step.rounds,
                    "sends": [
                        {"chunk": s.chunk, "src": s.src, "dst": s.dst, "op": s.op}
                        for s in step.sends
                    ],
                }
                for step in self.steps
            ],
        }
        if self.metadata:
            data["metadata"] = dict(self.metadata)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Algorithm":
        return cls(
            name=data["name"],
            collective=data["collective"],
            topology=Topology.from_dict(data["topology"]),
            chunks_per_node=data["chunks_per_node"],
            num_chunks=data["num_chunks"],
            precondition=frozenset(tuple(x) for x in data["precondition"]),
            postcondition=frozenset(tuple(x) for x in data["postcondition"]),
            steps=[
                Step(
                    rounds=entry["rounds"],
                    sends=tuple(
                        Send(s["chunk"], s["src"], s["dst"], s.get("op", "copy"))
                        for s in entry["sends"]
                    ),
                )
                for entry in data["steps"]
            ],
            combining=data.get("combining", False),
            metadata=dict(data.get("metadata", {})),
        )

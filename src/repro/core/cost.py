"""The (alpha, beta) cost model and Pareto-frontier utilities (Sections 2.3, 3.6, 3.7).

A k-synchronous algorithm with ``S`` steps, ``R`` rounds and per-node chunk
count ``C`` applied to an input of ``L`` bytes costs::

    S * alpha + (R / C) * L * beta

``alpha`` captures per-step fixed costs (kernel launch, synchronization)
and ``beta`` the per-byte time of a unit-bandwidth link.  The pair
``(S, R/C)`` therefore fully characterizes an algorithm's cost; Pareto
optimality, dominance, and latency/bandwidth crossover points are all
defined on these pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float, Fraction]


class CostError(Exception):
    """Raised for invalid cost-model parameters."""


def algorithm_cost(
    steps: int,
    rounds: int,
    chunks: int,
    size_bytes: Number,
    alpha: Number,
    beta: Number,
) -> float:
    """Evaluate ``S * alpha + (R / C) * L * beta``."""
    if steps < 0 or rounds < 0:
        raise CostError("steps and rounds must be non-negative")
    if chunks <= 0:
        raise CostError("chunk count must be positive")
    if size_bytes < 0:
        raise CostError("input size must be non-negative")
    return float(steps) * float(alpha) + (float(rounds) / float(chunks)) * float(size_bytes) * float(beta)


@dataclass(frozen=True, order=True)
class CostPoint:
    """A point in (latency cost, bandwidth cost) space.

    ``latency`` is the step count ``a`` and ``bandwidth`` the ratio ``b = R/C``
    from Section 3.7.  Ordering is lexicographic which is convenient for
    deterministic reporting; dominance is what matters for Pareto analysis.
    """

    latency: int
    bandwidth: Fraction

    def evaluate(self, size_bytes: Number, alpha: Number, beta: Number) -> float:
        return float(self.latency) * float(alpha) + float(self.bandwidth) * float(size_bytes) * float(beta)

    def dominates(self, other: "CostPoint") -> bool:
        """True when this point is at least as good in both costs and better in one."""
        return (
            self.latency <= other.latency
            and self.bandwidth <= other.bandwidth
            and (self.latency < other.latency or self.bandwidth < other.bandwidth)
        )


def cost_point(steps: int, rounds: int, chunks: int) -> CostPoint:
    return CostPoint(latency=steps, bandwidth=Fraction(rounds, chunks))


def pareto_frontier(points: Iterable[CostPoint]) -> List[CostPoint]:
    """Return the non-dominated subset, sorted by latency then bandwidth.

    Duplicate cost points are collapsed.
    """
    unique = sorted(set(points))
    frontier: List[CostPoint] = []
    for point in unique:
        if any(other.dominates(point) for other in unique if other != point):
            continue
        frontier.append(point)
    return frontier


def is_pareto_optimal(point: CostPoint, others: Iterable[CostPoint]) -> bool:
    """Pareto optimality of ``point`` with respect to a set of cost points.

    Follows the paper's definition: for every other algorithm with cost
    ``(a', b')``, ``a == a' ⇒ b' >= b`` and ``b == b' ⇒ a' >= a`` — and no
    algorithm strictly dominates it.
    """
    for other in others:
        if other.dominates(point):
            return False
        if other.latency == point.latency and other.bandwidth < point.bandwidth:
            return False
        if other.bandwidth == point.bandwidth and other.latency < point.latency:
            return False
    return True


def crossover_size(
    a: CostPoint, b: CostPoint, alpha: Number, beta: Number
) -> Optional[float]:
    """Input size (bytes) at which algorithms ``a`` and ``b`` cost the same.

    Returns ``None`` when one algorithm is never slower than the other
    (parallel cost lines or dominance).  Below the returned size the
    lower-latency algorithm wins; above it the lower-bandwidth one does.
    This is what lets SCCL "automatically switch between multiple
    implementations based on the input size" (Section 5.5).
    """
    latency_diff = (a.latency - b.latency) * float(alpha)
    bandwidth_diff = float(b.bandwidth - a.bandwidth) * float(beta)
    if bandwidth_diff == 0:
        return None
    size = latency_diff / bandwidth_diff
    return size if size > 0 else None


def best_algorithm_for_size(
    points: Sequence[CostPoint], size_bytes: Number, alpha: Number, beta: Number
) -> int:
    """Index of the cheapest cost point for the given input size."""
    if not points:
        raise CostError("no cost points given")
    costs = [p.evaluate(size_bytes, alpha, beta) for p in points]
    return min(range(len(points)), key=lambda i: costs[i])


def speedup(baseline_cost: float, candidate_cost: float) -> float:
    """Baseline time over candidate time (``> 1`` means the candidate is faster)."""
    if candidate_cost <= 0:
        raise CostError("candidate cost must be positive")
    return baseline_cost / candidate_cost

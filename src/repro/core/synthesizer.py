"""Single-instance synthesis: encode, solve, decode, verify.

:func:`synthesize` is the workhorse that Algorithm 1 (in
:mod:`repro.core.pareto`) calls once per candidate ``(S, R, C)`` tuple.  It
returns a :class:`SynthesisResult` carrying the outcome, the decoded and
*verified* algorithm (for SAT answers), and the timing / size statistics
that the paper's Tables 4 and 5 report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..solver import SolveResult
from .algorithm import Algorithm
from .encoding import NaiveEncoding, ScclEncoding
from .instance import SynCollInstance


class SynthesisError(Exception):
    """Raised when a model decodes to an invalid algorithm (encoder bug guard)."""


@dataclass
class SynthesisResult:
    """Outcome of synthesizing a single SynColl instance."""

    instance: SynCollInstance
    status: SolveResult
    algorithm: Optional[Algorithm] = None
    encode_time: float = 0.0
    solve_time: float = 0.0
    encoding_stats: Dict[str, int] = field(default_factory=dict)
    solver_stats: Dict[str, float] = field(default_factory=dict)
    encoding: str = "sccl"

    @property
    def is_sat(self) -> bool:
        return self.status is SolveResult.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SolveResult.UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status is SolveResult.UNKNOWN

    @property
    def total_time(self) -> float:
        """Encoding plus solving time — the quantity in the paper's "Time" columns."""
        return self.encode_time + self.solve_time

    def summary(self) -> str:
        sig = (
            f"C={self.instance.chunks_per_node} S={self.instance.steps} "
            f"R={self.instance.rounds}"
        )
        return (
            f"{self.instance.collective} [{sig}] -> {self.status.value} "
            f"in {self.total_time:.2f}s "
            f"(encode {self.encode_time:.2f}s, solve {self.solve_time:.2f}s)"
        )


def synthesize(
    instance: SynCollInstance,
    *,
    encoding: str = "sccl",
    prune: bool = True,
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
    verify: bool = True,
    name: Optional[str] = None,
) -> SynthesisResult:
    """Synthesize an algorithm for one SynColl instance.

    Parameters
    ----------
    instance:
        The ``(G, S, R, P, B, pre, post)`` tuple to solve.
    encoding:
        ``"sccl"`` (the paper's time/send split encoding) or ``"naive"``
        (one Boolean per ``(c, n, n', s)``; used for the ablation).
    prune:
        Enable distance-based variable pruning (sccl encoding only).
    time_limit / conflict_limit:
        Resource limits passed to the SAT solver; on exhaustion the result
        status is ``UNKNOWN``.
    verify:
        Re-check the decoded algorithm against the run semantics; any
        violation raises :class:`SynthesisError` (it would indicate a bug in
        the encoder, not user error).
    """
    start = time.monotonic()
    if encoding == "sccl":
        encoder = ScclEncoding(instance, prune=prune)
    elif encoding == "naive":
        encoder = NaiveEncoding(instance)
    else:
        raise ValueError(f"unknown encoding {encoding!r}")
    ctx = encoder.encode()
    encode_time = time.monotonic() - start

    outcome = ctx.check(time_limit=time_limit, conflict_limit=conflict_limit)
    result = SynthesisResult(
        instance=instance,
        status=outcome.result,
        encode_time=encode_time,
        solve_time=outcome.solve_time,
        encoding_stats=encoder.stats.as_dict(),
        solver_stats=outcome.stats,
        encoding=encoding,
    )
    if outcome.is_sat:
        algorithm = encoder.decode(outcome.model, name=name)
        if verify:
            try:
                algorithm.verify()
            except Exception as exc:  # pragma: no cover - encoder bug guard
                raise SynthesisError(
                    f"decoded algorithm fails verification: {exc}"
                ) from exc
        result.algorithm = algorithm
    return result


def synthesize_collective(
    collective: str,
    topology,
    chunks_per_node: int,
    steps: int,
    rounds: int,
    root: int = 0,
    **kwargs,
) -> SynthesisResult:
    """Convenience wrapper building the instance from a collective name."""
    from .instance import make_instance

    instance = make_instance(
        collective, topology, chunks_per_node, steps, rounds, root=root
    )
    return synthesize(instance, **kwargs)

"""Single-instance synthesis: encode, solve, decode, verify.

:func:`synthesize` is the workhorse that Algorithm 1 (in
:mod:`repro.core.pareto`) calls once per candidate ``(S, R, C)`` tuple.  It
returns a :class:`SynthesisResult` carrying the outcome, the decoded and
*verified* algorithm (for SAT answers), and the timing / size statistics
that the paper's Tables 4 and 5 report.

Solving is delegated to the engine layer: the ``backend`` parameter names a
registered :class:`~repro.engine.backends.SolverBackend` (default: the
pure-Python CDCL solver) and an optional
:class:`~repro.engine.cache.AlgorithmCache` short-circuits candidates whose
outcome a previous run already persisted (``cache_hit=True`` on the result).
Engine imports are deferred to call time so ``repro.core`` and
``repro.engine`` can import each other's submodules without a cycle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..solver import SolveResult
from ..telemetry import get_metrics, get_tracer
from .algorithm import Algorithm
from .encoding import NaiveEncoding, ScclEncoding
from .instance import SynCollInstance


class SynthesisError(Exception):
    """Raised when a model decodes to an invalid algorithm (encoder bug guard)."""


@dataclass
class SynthesisResult:
    """Outcome of synthesizing a single SynColl instance."""

    instance: SynCollInstance
    status: SolveResult
    algorithm: Optional[Algorithm] = None
    encode_time: float = 0.0
    solve_time: float = 0.0
    verify_time: float = 0.0
    encoding_stats: Dict[str, int] = field(default_factory=dict)
    solver_stats: Dict[str, float] = field(default_factory=dict)
    encoding: str = "sccl"
    backend: str = "cdcl"
    cache_hit: bool = False
    #: How this verdict was obtained: ``"solved"`` (a solver ran) or
    #: ``"cut"`` (synthesized from a monotone UNSAT bound, no solver call).
    #: Cache replays keep the provenance of the entry they replay.
    provenance: str = "solved"
    #: Telemetry spans recorded while producing this result in a pool
    #: worker process (``Tracer.export()`` dicts).  The dispatching parent
    #: re-parents them under its sweep span and drops the field; it is
    #: never persisted to the cache.
    trace: Optional[list] = None

    @property
    def is_sat(self) -> bool:
        return self.status is SolveResult.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SolveResult.UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status is SolveResult.UNKNOWN

    @property
    def total_time(self) -> float:
        """Encoding plus solving time — the quantity in the paper's "Time" columns."""
        return self.encode_time + self.solve_time

    def summary(self) -> str:
        sig = (
            f"C={self.instance.chunks_per_node} S={self.instance.steps} "
            f"R={self.instance.rounds}"
        )
        if self.cache_hit:
            provenance = f"[cached, backend={self.backend}]"
        else:
            provenance = f"[backend={self.backend}]"
        return (
            f"{self.instance.collective} [{sig}] -> {self.status.value} "
            f"in {self.total_time:.2f}s "
            f"(encode {self.encode_time:.2f}s, solve {self.solve_time:.2f}s) "
            f"{provenance}"
        )


def synthesize(
    instance: SynCollInstance,
    *,
    encoding: str = "sccl",
    prune: bool = True,
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
    verify: bool = True,
    name: Optional[str] = None,
    backend: Optional[str] = None,
    cache=None,
) -> SynthesisResult:
    """Synthesize an algorithm for one SynColl instance.

    Parameters
    ----------
    instance:
        The ``(G, S, R, P, B, pre, post)`` tuple to solve.
    encoding:
        ``"sccl"`` (the paper's time/send split encoding) or ``"naive"``
        (one Boolean per ``(c, n, n', s)``; used for the ablation).
    prune:
        Enable distance-based variable pruning (sccl encoding only).
    time_limit / conflict_limit:
        Resource limits passed to the SAT solver; on exhaustion the result
        status is ``UNKNOWN``.
    verify:
        Re-check the decoded algorithm against the run semantics; any
        violation raises :class:`SynthesisError` (it would indicate a bug in
        the encoder, not user error).
    backend:
        Name of a registered solver backend (default ``"cdcl"``).
    cache:
        An :class:`~repro.engine.cache.AlgorithmCache`.  A hit returns a
        replayed result (``cache_hit=True``) without encoding or solving;
        fresh SAT/UNSAT outcomes are persisted back.
    """
    from ..engine.backends import get_backend
    from ..engine.cache import lookup_result, store_result

    if encoding not in ("sccl", "naive"):
        raise ValueError(f"unknown encoding {encoding!r}")
    # Resolve the backend before consulting the cache so a typo'd backend
    # name fails immediately rather than only on the first cache miss.
    solver_backend = get_backend(backend)

    tracer = get_tracer()
    with tracer.span(
        "probe",
        collective=instance.collective,
        C=instance.chunks_per_node,
        S=instance.steps,
        R=instance.rounds,
        encoding=encoding,
        backend=solver_backend.name,
    ) as probe_span:
        if cache is not None:
            cached = lookup_result(
                cache, instance, encoding=encoding, prune=prune, verify=verify
            )
            if cached is not None:
                if name is not None and cached.algorithm is not None:
                    cached.algorithm = cached.algorithm.renamed(name)
                probe_span.set(
                    verdict=cached.status.value, cache_hit=True,
                    backend=cached.backend,
                )
                return cached

        with tracer.span("encode", encoding=encoding):
            start = time.monotonic()
            if encoding == "sccl":
                encoder = ScclEncoding(instance, prune=prune)
            else:
                encoder = NaiveEncoding(instance)
            ctx = encoder.encode()
            encode_time = time.monotonic() - start

        handle = solver_backend.create()
        with tracer.span("solve", backend=solver_backend.name):
            start = time.monotonic()
            loaded = handle.load(ctx.cnf)
            if not loaded:
                status = SolveResult.UNSAT
            else:
                status = handle.solve(
                    conflict_limit=conflict_limit, time_limit=time_limit
                )
            solve_time = time.monotonic() - start

        metrics = get_metrics()
        metrics.inc("repro_solver_calls_total", backend=solver_backend.name)
        metrics.observe(
            "repro_solve_seconds", solve_time, backend=solver_backend.name
        )
        metrics.observe("repro_encode_seconds", encode_time)

        result = SynthesisResult(
            instance=instance,
            status=status,
            encode_time=encode_time,
            solve_time=solve_time,
            encoding_stats=encoder.stats.as_dict(),
            solver_stats=handle.stats() if loaded else {},
            encoding=encoding,
            backend=solver_backend.name,
        )
        probe_span.set(verdict=status.value, cache_hit=False)
        if status is SolveResult.SAT:
            algorithm = encoder.decode(handle.model(), name=name)
            if verify:
                with tracer.span("verify"):
                    start = time.monotonic()
                    try:
                        algorithm.verify()
                    except Exception as exc:  # pragma: no cover - encoder bug guard
                        raise SynthesisError(
                            f"decoded algorithm fails verification: {exc}"
                        ) from exc
                    result.verify_time = time.monotonic() - start
            result.algorithm = algorithm
        if cache is not None:
            store_result(cache, result, encoding=encoding, prune=prune)
        _record_probe(result, encoding=encoding, prune=prune)
        return result


def _record_probe(result: SynthesisResult, *, encoding: str, prune: bool) -> None:
    """Append one solved probe to the performance archive (best effort).

    Only fresh solves are recorded — cache replays carry the original
    run's timings and would skew every distribution built on top.
    """
    from ..engine.cache import instance_fingerprint
    from ..telemetry import record_run

    instance = result.instance
    record_run(
        "probe",
        name=(
            f"{instance.collective}/{instance.topology.name}/"
            f"C{instance.chunks_per_node}S{instance.steps}R{instance.rounds}"
        ),
        fingerprint=instance_fingerprint(
            instance, encoding=encoding, prune=prune
        ),
        features={
            "nodes": instance.topology.num_nodes,
            "C": instance.chunks_per_node,
            "S": instance.steps,
            "R": instance.rounds,
        },
        backend=result.backend,
        verdict=result.status.value,
        wall_s=result.encode_time + result.solve_time + result.verify_time,
        phases={
            "encode_s": round(result.encode_time, 6),
            "solve_s": round(result.solve_time, 6),
            "verify_s": round(result.verify_time, 6),
        },
        extra={"encoding": encoding, "provenance": result.provenance},
    )


def synthesize_collective(
    collective: str,
    topology,
    chunks_per_node: int,
    steps: int,
    rounds: int,
    root: int = 0,
    **kwargs,
) -> SynthesisResult:
    """Convenience wrapper building the instance from a collective name."""
    from .instance import make_instance

    instance = make_instance(
        collective, topology, chunks_per_node, steps, rounds, root=root
    )
    return synthesize(instance, **kwargs)

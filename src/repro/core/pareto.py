"""Pareto-optimal synthesis — Algorithm 1 of the paper.

``Pareto-Synthesize(k, Coll, P, B)`` enumerates step counts ``S`` starting
from the latency lower bound ``a_l``.  For each ``S`` it builds the
candidate set ``A = {(R, C) | S <= R <= S + k  and  R / C >= b_l}``, checks
candidates in ascending order of bandwidth cost ``R / C`` and reports the
first satisfiable one; that algorithm is Pareto-optimal for the current
``S``.  The enumeration stops as soon as an algorithm matching the
bandwidth lower bound ``b_l`` has been reported (or a step budget runs
out — the paper notes the procedure need not terminate for every
collective, Broadcast on the DGX-1 being the canonical example).

Combining collectives are handled by delegation (Section 3.5):
Reducescatter and Allreduce reuse the Allgather enumeration, Reduce reuses
Broadcast.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..collectives import get_collective
from ..solver import SolveResult
from ..telemetry import Tracer, exact_quantiles, get_tracer, record_run, tracing
from ..topology import Topology
from .algorithm import Algorithm
from .bounds import lower_bounds
from .combining import allreduce_from_allgather, invert_algorithm
from .cost import cost_point, is_pareto_optimal
from .synthesizer import SynthesisResult


class ParetoError(Exception):
    """Raised for invalid Pareto-synthesis parameters."""


@dataclass
class ParetoPoint:
    """One row of the paper's Table 4 / Table 5."""

    collective: str
    chunks_per_node: int
    steps: int
    rounds: int
    status: SolveResult
    synthesis_time: float
    algorithm: Optional[Algorithm] = None
    latency_optimal: bool = False
    bandwidth_optimal: bool = False
    pareto_optimal: bool = False
    proved: bool = True  # False when resource limits made lower candidates UNKNOWN
    unsat_probes: int = 0
    backend: str = "cdcl"    # solver backend that produced the algorithm
    cache_hit: bool = False  # True when replayed from the algorithm cache

    @property
    def bandwidth_cost(self) -> Fraction:
        return Fraction(self.rounds, self.chunks_per_node)

    @property
    def signature(self) -> Tuple[int, int, int]:
        return (self.chunks_per_node, self.steps, self.rounds)

    def optimality_label(self) -> str:
        labels = []
        if self.latency_optimal:
            labels.append("Latency")
        if self.bandwidth_optimal:
            labels.append("Bandwidth")
        if len(labels) == 2:
            return "Both"
        return labels[0] if labels else ""

    def provenance_label(self) -> str:
        """``"cached"`` for replayed rows, the backend name for solved ones."""
        return "cached" if self.cache_hit else self.backend

    def to_dict(self, include_timing: bool = True) -> dict:
        data = {
            "collective": self.collective,
            "C": self.chunks_per_node,
            "S": self.steps,
            "R": self.rounds,
            "status": self.status.value,
            "latency_optimal": self.latency_optimal,
            "bandwidth_optimal": self.bandwidth_optimal,
            "pareto_optimal": self.pareto_optimal,
            "proved": self.proved,
            "unsat_probes": self.unsat_probes,
            "algorithm": None if self.algorithm is None else self.algorithm.to_dict(),
        }
        if include_timing:
            data["synthesis_time"] = self.synthesis_time
            data["backend"] = self.backend
            data["cache_hit"] = self.cache_hit
        return data


@dataclass
class ParetoFrontier:
    """Result of a Pareto-Synthesize run."""

    collective: str
    topology_name: str
    k: int
    latency_lower_bound: int
    bandwidth_lower_bound: Fraction
    points: List[ParetoPoint] = field(default_factory=list)
    exhausted_steps: bool = False
    total_time: float = 0.0
    strategy: str = "serial"
    backend: str = "cdcl"
    engine_stats: Dict[str, int] = field(default_factory=dict)
    #: Bound-seeding mode the run used: "baseline", "custom" or "off".
    bounds: str = "off"
    #: Provenance of the seeded upper bounds (e.g. "baseline:ring").
    bound_sources: List[str] = field(default_factory=list)

    def algorithms(self) -> List[Algorithm]:
        return [p.algorithm for p in self.points if p.algorithm is not None]

    def best_for_size(self, size_bytes: float, alpha: float, beta: float) -> ParetoPoint:
        if not self.points:
            raise ParetoError("empty frontier")
        return min(
            (p for p in self.points if p.algorithm is not None),
            key=lambda p: p.algorithm.cost(size_bytes, alpha, beta),
        )

    def table_rows(self) -> List[dict]:
        """Rows shaped like the paper's Tables 4/5."""
        return [
            {
                "collective": point.collective,
                "C": point.chunks_per_node,
                "S": point.steps,
                "R": point.rounds,
                "optimality": point.optimality_label(),
                "time_s": round(point.synthesis_time, 2),
                "solved_by": point.provenance_label(),
            }
            for point in self.points
        ]

    def to_dict(self, include_timing: bool = True) -> dict:
        """JSON-friendly serialization of the whole frontier.

        ``include_timing=False`` drops wall-clock and provenance fields, so
        two runs over the same inputs serialize byte-identically regardless
        of scheduling — the determinism tests compare serial and parallel
        sweeps this way.
        """
        data = {
            "collective": self.collective,
            "topology": self.topology_name,
            "k": self.k,
            "latency_lower_bound": self.latency_lower_bound,
            "bandwidth_lower_bound": [
                self.bandwidth_lower_bound.numerator,
                self.bandwidth_lower_bound.denominator,
            ],
            "exhausted_steps": self.exhausted_steps,
            "points": [p.to_dict(include_timing=include_timing) for p in self.points],
        }
        if include_timing:
            data["total_time"] = self.total_time
            data["strategy"] = self.strategy
            data["backend"] = self.backend
            data["engine_stats"] = dict(self.engine_stats)
            data["bounds"] = self.bounds
            data["bound_sources"] = list(self.bound_sources)
        return data


def candidate_set(
    steps: int, k: int, bandwidth_lower: Fraction, max_chunks: Optional[int] = None
) -> List[Tuple[int, int]]:
    """The candidate set ``A`` for a given S: (R, C) pairs ordered by R/C.

    ``R`` ranges over ``S .. S + k`` and ``C`` over ``1 .. floor(R / b_l)``
    (the bandwidth lower bound caps useful chunk counts; without ``k`` the
    set would be unbounded).  Ties in ``R / C`` are broken toward fewer
    rounds, which produces smaller encodings first.
    """
    if bandwidth_lower <= 0:
        raise ParetoError("bandwidth lower bound must be positive")
    candidates: List[Tuple[int, int]] = []
    for rounds in range(steps, steps + k + 1):
        chunk_cap = int(Fraction(rounds, 1) / bandwidth_lower)
        if max_chunks is not None:
            chunk_cap = min(chunk_cap, max_chunks)
        for chunks in range(1, chunk_cap + 1):
            if Fraction(rounds, chunks) >= bandwidth_lower:
                candidates.append((rounds, chunks))
    candidates.sort(key=lambda rc: (Fraction(rc[0], rc[1]), rc[0], rc[1]))
    return candidates


def resolve_strategy(
    topology: Topology,
    *,
    k: int = 0,
    max_chunks: Optional[int] = None,
    max_workers: Optional[int] = None,
    cpu_count: Optional[int] = None,
    model: Union[str, None, "object"] = "ambient",
) -> str:
    """Pick a concrete sweep strategy for ``strategy="auto"``.

    Single-core hosts (or an explicit one-worker budget) get the serial
    loop: the pool strategies only add process overhead there, and the
    shared-prefix family's exact-formula UNKNOWN retries can make the
    incremental path pay for probes twice.  That guard is structural and
    always wins.

    On multi-core hosts the pick is *measured* where history allows:
    ``model="ambient"`` (the default) consults this host's
    :class:`~repro.perf.model.ProbeTimeModel` over the performance archive
    — per-(instance-feature, strategy) timing distributions from previous
    ``pareto`` runs — and returns the strategy with the lowest recorded
    median wall clock for this instance shape.  A cold archive (or
    ``model="off"``/``None``, or an unreadable archive — calibration may
    never break synthesis) falls back to the static size thresholds:
    large instances — many nodes, deep chunk subdivision or a loose
    synchrony budget, all of which multiply the candidate count and
    formula size — get the speculative cross-``S`` pipeline, small ones
    the incremental dispatcher.  A :class:`~repro.perf.model.ProbeTimeModel`
    instance is consulted as-is (tests).

    The pick only selects *which dispatcher runs*; every dispatcher
    commits frontiers byte-identically, so calibration cannot change
    frontier bytes.  ``cpu_count`` overrides :func:`os.cpu_count` so the
    policy itself is unit-testable.
    """
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if cores < 2 or (max_workers is not None and max_workers < 2):
        return "serial"
    measured = _measured_pick(topology, k=k, max_chunks=max_chunks, model=model)
    if measured is not None:
        return measured
    large = (
        topology.num_nodes >= 6
        or (max_chunks is not None and max_chunks >= 4)
        or k >= 2
    )
    return "speculative" if large else "incremental"


def _measured_pick(
    topology: Topology,
    *,
    k: int,
    max_chunks: Optional[int],
    model: Union[str, None, "object"],
) -> Optional[str]:
    """The probe-time model's recommendation, or None (cold start / off)."""
    if model in (None, "off", "static"):
        return None
    try:
        from ..perf import KNOWN_STRATEGIES, ambient_model, strategy_features

        if model == "ambient":
            model = ambient_model()
        pick = model.predict(
            strategy_features(topology, k=k, max_chunks=max_chunks)
        )
    except Exception:
        return None
    return pick if pick in KNOWN_STRATEGIES else None


def pareto_synthesize(
    collective: str,
    topology: Topology,
    k: int = 0,
    *,
    root: int = 0,
    max_steps: Optional[int] = None,
    max_chunks: Optional[int] = None,
    time_limit_per_instance: Optional[float] = None,
    conflict_limit: Optional[int] = None,
    stop_at_bandwidth_optimal: bool = True,
    on_result: Optional[Callable[[SynthesisResult], None]] = None,
    strategy: str = "incremental",
    max_workers: Optional[int] = None,
    backend: Optional[str] = None,
    portfolio: Optional[Sequence[str]] = None,
    cache=None,
    bounds: Union[str, None, "object"] = "baseline",
    trace: Union[str, "os.PathLike", Tracer, None] = None,
) -> ParetoFrontier:
    """Run Algorithm 1 for a collective on a topology.

    Parameters
    ----------
    collective:
        Any collective from Table 2, including combining ones (handled via
        the Section 3.5 reduction).
    k:
        The synchrony budget: rounds may exceed steps by at most ``k``.
    max_steps:
        Upper bound on the enumerated step count (defaults to the latency
        lower bound plus 8); needed because the procedure does not always
        terminate on its own.
    time_limit_per_instance / conflict_limit:
        Resource limits per SMT query; exceeded limits yield UNKNOWN
        candidates, which are skipped but recorded (``proved=False``).
    strategy:
        Candidate-sweep execution strategy: ``"incremental"`` (default; one
        shared-prefix encoding per step count probed via per-candidate
        assumption frames), ``"serial"`` (cold encode+solve per candidate,
        the paper's loop), ``"parallel"`` (process-pool fan-out within one
        step count, serial-replay semantics), ``"speculative"``
        (cross-step pipeline: candidates for S+1 start while S is still in
        flight, committed in cost order so the frontier stays byte-identical
        to the serial loop) or ``"auto"`` (pick one of the above from the
        host's core count and the instance size — see
        :func:`resolve_strategy`; the frontier records the resolved name).
    max_workers:
        Worker-process count for the parallel/speculative strategies.
    backend:
        Registered solver-backend name (default ``"cdcl"``).
    portfolio:
        Solver-backend names to race per candidate (speculative strategy
        only); the first SAT/UNSAT verdict wins.
    cache:
        An :class:`~repro.engine.cache.AlgorithmCache`; hits replay persisted
        SAT/UNSAT probes without touching the solver.
    bounds:
        Bound-seeded pruning (on by default).  ``"baseline"`` seeds a
        :class:`~repro.engine.bounds.BoundsLedger` from the verified
        baseline suite so dominated candidates are skipped and monotone
        UNSAT cuts propagate across the sweep; ``"off"`` (or ``None``)
        disables seeding; a :class:`~repro.engine.bounds.BoundsLedger`
        instance is used as-is (it must match the collective, topology and
        root).  The Pareto-optimal frontier points are identical with
        bounds on or off — pruning only removes dominated probes.
    trace:
        Span tracing for this run.  A path (str / PathLike) records the
        whole run with a fresh :class:`~repro.telemetry.Tracer` and writes
        Chrome trace-event JSON there (open it in Perfetto or
        ``chrome://tracing``, or digest it with ``repro trace``).  A
        :class:`~repro.telemetry.Tracer` instance records into that tracer
        and writes nothing.  ``None`` (default) leaves the ambient tracer
        in place — the no-op tracer unless the caller installed one.
    """
    from ..engine.backends import get_backend
    from ..engine.bounds import BoundsLedger, seed_ledger
    from ..engine.dispatch import SweepRequest, SweepStats, make_dispatcher

    if k < 0:
        raise ParetoError("k must be non-negative")

    if trace is not None:
        rerun = dict(
            root=root,
            max_steps=max_steps,
            max_chunks=max_chunks,
            time_limit_per_instance=time_limit_per_instance,
            conflict_limit=conflict_limit,
            stop_at_bandwidth_optimal=stop_at_bandwidth_optimal,
            on_result=on_result,
            strategy=strategy,
            max_workers=max_workers,
            backend=backend,
            portfolio=portfolio,
            cache=cache,
            bounds=bounds,
            trace=None,
        )
        if isinstance(trace, Tracer):
            with tracing(trace):
                return pareto_synthesize(collective, topology, k, **rerun)
        tracer = Tracer()
        with tracing(tracer):
            frontier = pareto_synthesize(collective, topology, k, **rerun)
        tracer.write_chrome_trace(trace)
        return frontier

    spec = get_collective(collective)

    # --- combining collectives: delegate to the non-combining counterpart ----
    if spec.combining:
        return _pareto_synthesize_combining(
            spec.name,
            topology,
            k,
            root=root,
            max_steps=max_steps,
            max_chunks=max_chunks,
            time_limit_per_instance=time_limit_per_instance,
            conflict_limit=conflict_limit,
            stop_at_bandwidth_optimal=stop_at_bandwidth_optimal,
            on_result=on_result,
            strategy=strategy,
            max_workers=max_workers,
            backend=backend,
            portfolio=portfolio,
            cache=cache,
            bounds=bounds,
        )

    if strategy == "auto":
        strategy = resolve_strategy(
            topology, k=k, max_chunks=max_chunks, max_workers=max_workers
        )

    if bounds is None or bounds == "off":
        ledger = None
        bounds_mode = "off"
    elif isinstance(bounds, BoundsLedger):
        ledger = bounds
        if (
            ledger.collective != spec.name
            or ledger.topology is not topology
            or ledger.root != root
        ):
            raise ParetoError(
                "a custom BoundsLedger must match the synthesized collective, "
                "topology and root (combining collectives delegate to their "
                "non-combining base and cannot reuse the caller's ledger)"
            )
        bounds_mode = "custom"
    elif bounds == "baseline":
        ledger = seed_ledger(spec.name, topology, root=root)
        bounds_mode = "baseline"
    else:
        raise ParetoError(f"unknown bounds mode {bounds!r}")

    start_time = time.monotonic()
    dispatcher = make_dispatcher(strategy, max_workers=max_workers, portfolio=portfolio)
    sweep_stats = SweepStats()
    a_l, b_l = lower_bounds(spec.name, topology, root=root)
    if max_steps is None:
        max_steps = a_l + 8
    frontier = ParetoFrontier(
        collective=spec.name,
        topology_name=topology.name,
        k=k,
        latency_lower_bound=a_l,
        bandwidth_lower_bound=b_l,
        strategy=strategy,
        backend=get_backend(backend).name,
        bounds=bounds_mode,
        bound_sources=ledger.sources() if ledger is not None else [],
    )
    pareto_ctx = get_tracer().span(
        "pareto", collective=spec.name, topology=topology.name, k=k,
        strategy=strategy, bounds=bounds_mode,
    )

    def build_request(steps: int) -> SweepRequest:
        return SweepRequest(
            collective=spec.name,
            topology=topology,
            steps=steps,
            candidates=tuple(candidate_set(steps, k, b_l, max_chunks)),
            root=root,
            prune=True,
            backend=backend,
            time_limit=time_limit_per_instance,
            conflict_limit=conflict_limit,
            bounds=ledger,
        )

    # Phase splits and raw solve samples across the whole run: what the
    # performance archive's "pareto" record carries, and what the probe-time
    # model later calibrates strategy="auto" on.
    phase_acc = {"encode_s": 0.0, "solve_s": 0.0, "verify_s": 0.0}
    solve_samples: List[float] = []
    cache_replays = 0

    def ingest_sweep(steps: int, outcome) -> bool:
        """Fold one sweep outcome into the frontier; True at bandwidth-optimal."""
        nonlocal cache_replays
        sweep_stats.merge(outcome.stats)
        for result in outcome.results:
            if result.cache_hit:
                cache_replays += 1
            else:
                phase_acc["encode_s"] += result.encode_time
                phase_acc["solve_s"] += result.solve_time
                phase_acc["verify_s"] += result.verify_time
                solve_samples.append(result.solve_time)
        proved = True
        unsat_probes = 0
        for result in outcome.results:
            if on_result is not None:
                on_result(result)
            if result.is_unknown:
                proved = False
                continue
            if result.is_unsat:
                unsat_probes += 1
                continue
            chunks = result.instance.chunks_per_node
            rounds = result.instance.rounds
            point = ParetoPoint(
                collective=spec.name,
                chunks_per_node=chunks,
                steps=steps,
                rounds=rounds,
                status=result.status,
                synthesis_time=result.total_time,
                algorithm=result.algorithm,
                latency_optimal=(steps == a_l),
                bandwidth_optimal=(Fraction(rounds, chunks) == b_l),
                proved=proved,
                unsat_probes=unsat_probes,
                backend=result.backend,
                cache_hit=result.cache_hit,
            )
            frontier.points.append(point)
            return point.bandwidth_optimal
        # No satisfiable candidate at this step count; keep increasing S.
        return False

    step_counts = list(range(a_l, max_steps + 1))
    with pareto_ctx as pareto_span:
        if hasattr(dispatcher, "sweep_many"):
            # Cross-S pipeline: hand the dispatcher the whole sweep sequence so
            # it can speculate past the step count currently being decided.  The
            # stop predicate mirrors Algorithm 1's termination test; committed
            # outcomes are folded in enumeration order, so the frontier (and
            # the exhausted_steps flag) matches the serial loop exactly.
            def stop_predicate(outcome) -> bool:
                if not stop_at_bandwidth_optimal:
                    return False
                first_sat = outcome.first_sat
                return first_sat is not None and (
                    Fraction(
                        first_sat.instance.rounds, first_sat.instance.chunks_per_node
                    )
                    == b_l
                )

            outcomes = dispatcher.sweep_many(
                [build_request(steps) for steps in step_counts],
                cache=cache,
                stop=stop_predicate,
            )
            stopped_at: Optional[int] = None
            for index, outcome in enumerate(outcomes):
                if outcome is None:
                    break  # cancelled speculative sweeps past the stop point
                reached = ingest_sweep(step_counts[index], outcome)
                if reached and stop_at_bandwidth_optimal:
                    stopped_at = index
                    break
            # The serial loop only skips its for-else when it breaks at the top
            # of a *later* iteration, so stopping on the final step count still
            # reports the budget as exhausted.
            frontier.exhausted_steps = stopped_at is None or (
                stopped_at == len(step_counts) - 1
            )
        else:
            reached_bandwidth_optimal = False
            for steps in step_counts:
                if reached_bandwidth_optimal and stop_at_bandwidth_optimal:
                    break
                outcome = dispatcher.sweep(build_request(steps), cache=cache)
                if ingest_sweep(steps, outcome):
                    reached_bandwidth_optimal = True
            else:
                frontier.exhausted_steps = True

        _mark_pareto_optimal(frontier)
        frontier.total_time = time.monotonic() - start_time
        frontier.engine_stats = sweep_stats.as_dict()
        pareto_span.set(points=len(frontier.points))

    try:
        from ..perf import strategy_features

        features = strategy_features(topology, k=k, max_chunks=max_chunks)
    except Exception:  # pragma: no cover - calibration must not break runs
        features = {}
    record_run(
        "pareto",
        name=f"{spec.name}/{topology.name}",
        features=features,
        strategy=strategy,
        backend=frontier.backend,
        verdict="sat" if frontier.points else "exhausted",
        wall_s=frontier.total_time,
        phases={key: round(value, 6) for key, value in phase_acc.items()},
        quantiles={
            f"solve_{key}": value
            for key, value in exact_quantiles(solve_samples).items()
        },
        extra={
            "points": len(frontier.points),
            "bounds": bounds_mode,
            "cache_replays": cache_replays,
            "engine_stats": sweep_stats.as_dict(),
        },
    )
    return frontier


def _mark_pareto_optimal(frontier: ParetoFrontier) -> None:
    points = [p for p in frontier.points if p.status is SolveResult.SAT]
    cost_points = [cost_point(p.steps, p.rounds, p.chunks_per_node) for p in points]
    for point, cp in zip(points, cost_points):
        point.pareto_optimal = is_pareto_optimal(cp, [o for o in cost_points if o != cp])


def _pareto_synthesize_combining(
    collective: str,
    topology: Topology,
    k: int,
    *,
    root: int,
    max_steps: Optional[int],
    max_chunks: Optional[int],
    time_limit_per_instance: Optional[float],
    conflict_limit: Optional[int],
    stop_at_bandwidth_optimal: bool,
    on_result: Optional[Callable[[SynthesisResult], None]],
    strategy: str = "incremental",
    max_workers: Optional[int] = None,
    backend: Optional[str] = None,
    portfolio: Optional[Sequence[str]] = None,
    cache=None,
    bounds: Union[str, None, "object"] = "baseline",
) -> ParetoFrontier:
    """Reduce Reducescatter / Reduce / Allreduce synthesis to the non-combining base."""
    base_collective = {"Reducescatter": "Allgather", "Reduce": "Broadcast", "Allreduce": "Allgather"}[
        collective
    ]
    base_topology = topology if collective == "Allreduce" else topology.reversed()
    base = pareto_synthesize(
        base_collective,
        base_topology,
        k,
        root=root,
        max_steps=max_steps,
        max_chunks=max_chunks,
        time_limit_per_instance=time_limit_per_instance,
        conflict_limit=conflict_limit,
        stop_at_bandwidth_optimal=stop_at_bandwidth_optimal,
        on_result=on_result,
        strategy=strategy,
        max_workers=max_workers,
        backend=backend,
        portfolio=portfolio,
        cache=cache,
        bounds=bounds,
    )
    frontier = ParetoFrontier(
        collective=collective,
        topology_name=topology.name,
        k=k,
        latency_lower_bound=(
            2 * base.latency_lower_bound if collective == "Allreduce" else base.latency_lower_bound
        ),
        bandwidth_lower_bound=(
            _allreduce_bandwidth_bound(base, topology)
            if collective == "Allreduce"
            else base.bandwidth_lower_bound
        ),
        total_time=base.total_time,
        exhausted_steps=base.exhausted_steps,
        strategy=base.strategy,
        backend=base.backend,
        engine_stats=dict(base.engine_stats),
        bounds=base.bounds,
        bound_sources=list(base.bound_sources),
    )
    for base_point in base.points:
        algorithm = base_point.algorithm
        if algorithm is None:
            continue
        if collective == "Allreduce":
            derived = allreduce_from_allgather(algorithm)
            chunks = algorithm.num_chunks
            steps = 2 * base_point.steps
            rounds = 2 * base_point.rounds
        else:
            derived = invert_algorithm(algorithm, collective=collective, target_topology=topology)
            chunks = base_point.chunks_per_node
            steps = base_point.steps
            rounds = base_point.rounds
        derived.verify()
        frontier.points.append(
            ParetoPoint(
                collective=collective,
                chunks_per_node=chunks,
                steps=steps,
                rounds=rounds,
                status=base_point.status,
                synthesis_time=base_point.synthesis_time,
                algorithm=derived,
                latency_optimal=base_point.latency_optimal,
                bandwidth_optimal=base_point.bandwidth_optimal,
                proved=base_point.proved,
                unsat_probes=base_point.unsat_probes,
                backend=base_point.backend,
                cache_hit=base_point.cache_hit,
            )
        )
    _mark_pareto_optimal(frontier)
    return frontier


def _allreduce_bandwidth_bound(base: "ParetoFrontier", topology: Topology) -> Fraction:
    """Allreduce bandwidth bound: twice the Allgather bound, re-normalized.

    An Allreduce with per-node chunk count ``P * C_ag`` spends ``2 * R_ag``
    rounds, so its bandwidth cost is ``2 R_ag / (P C_ag)`` — i.e. two times
    the Allgather bound divided by ``P``.
    """
    return Fraction(2, topology.num_nodes) * base.bandwidth_lower_bound

"""SynColl problem instances (Section 3.2 of the paper).

An instance of the synthesis problem is the tuple
``(G, S, R, P, B, pre, post)``:

* ``G`` — global number of chunks,
* ``S`` — number of synchronous steps,
* ``R`` — total number of rounds (so the algorithm is ``(R - S)``-synchronous),
* ``P, B`` — the topology (node count and bandwidth relation),
* ``pre, post`` — chunk placement relations before and after the collective.

:class:`SynCollInstance` carries the topology object itself (which embeds
``P`` and ``B``) plus bookkeeping the evaluation needs: the collective name,
the per-node chunk count ``C`` and the root node for rooted collectives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..collectives import CollectiveSpec, Placement, get_collective
from ..topology import Topology


class InstanceError(Exception):
    """Raised for inconsistent SynColl instances."""


@dataclass(frozen=True)
class SynCollInstance:
    """A fully-specified synthesis problem.

    Use :func:`make_instance` to build one from a collective name and a
    per-node chunk count; the constructor only validates consistency.
    """

    collective: str
    topology: Topology
    num_chunks: int          # G — global chunk count
    steps: int               # S
    rounds: int              # R
    precondition: Placement
    postcondition: Placement
    chunks_per_node: int     # C — per-node chunk count (for the cost model)
    root: int = 0

    def __post_init__(self) -> None:
        if self.num_chunks <= 0:
            raise InstanceError("instance needs at least one chunk")
        if self.steps <= 0:
            raise InstanceError("instance needs at least one step")
        if self.rounds < self.steps:
            raise InstanceError(
                f"rounds ({self.rounds}) must be at least the number of steps "
                f"({self.steps}); every step performs at least one round"
            )
        if self.chunks_per_node <= 0:
            raise InstanceError("per-node chunk count must be positive")
        nodes = self.topology.num_nodes
        for (chunk, node) in self.precondition | self.postcondition:
            if not 0 <= chunk < self.num_chunks:
                raise InstanceError(f"chunk {chunk} out of range [0, {self.num_chunks})")
            if not 0 <= node < nodes:
                raise InstanceError(f"node {node} out of range [0, {nodes})")
        for chunk in range(self.num_chunks):
            if not any(c == chunk for (c, _) in self.precondition):
                raise InstanceError(f"chunk {chunk} has no source in the precondition")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    @property
    def synchrony(self) -> int:
        """The k in "k-synchronous": ``R - S``."""
        return self.rounds - self.steps

    @property
    def bandwidth_cost(self) -> Fraction:
        """The bandwidth cost ``R / C`` of any algorithm solving this instance."""
        return Fraction(self.rounds, self.chunks_per_node)

    @property
    def latency_cost(self) -> int:
        """The latency cost ``S`` of any algorithm solving this instance."""
        return self.steps

    def describe(self) -> str:
        return (
            f"{self.collective} on {self.topology.name}: "
            f"C={self.chunks_per_node} (G={self.num_chunks}), "
            f"S={self.steps}, R={self.rounds} (k={self.synchrony})"
        )


def make_instance(
    collective: str,
    topology: Topology,
    chunks_per_node: int,
    steps: int,
    rounds: int,
    root: int = 0,
) -> SynCollInstance:
    """Build a :class:`SynCollInstance` for a named non-combining collective.

    Combining collectives (Reduce, Reducescatter, Allreduce) are not encoded
    directly — synthesize their non-combining counterpart and apply the
    reduction in :mod:`repro.core.combining`.
    """
    spec: CollectiveSpec = get_collective(collective)
    if spec.combining:
        raise InstanceError(
            f"{spec.name} is a combining collective; synthesize {spec.inverse_of} "
            f"and use repro.core.combining to derive it"
        )
    num_chunks = spec.global_chunks(topology.num_nodes, chunks_per_node)
    pre = spec.precondition(topology.num_nodes, chunks_per_node, root)
    post = spec.postcondition(topology.num_nodes, chunks_per_node, root)
    return SynCollInstance(
        collective=spec.name,
        topology=topology,
        num_chunks=num_chunks,
        steps=steps,
        rounds=rounds,
        precondition=pre,
        postcondition=post,
        chunks_per_node=chunks_per_node,
        root=root,
    )

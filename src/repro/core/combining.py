"""Combining collectives via inversion (Section 3.5).

The paper synthesizes only non-combining collectives directly.  Combining
collectives are derived:

* **Reduce** is the inverse of **Broadcast**: wherever the broadcast sends a
  chunk from ``n`` to ``n'`` at step ``s``, the reduce receives the partial
  from ``n'`` at ``n`` at step ``S - 1 - s`` and folds it in.
* **Reducescatter** is the inverse of **Allgather** in the same way.
* **Allreduce** is a **Reducescatter** (the inverse of an Allgather)
  followed by that **Allgather**.

Inversion is valid for any collective whose chunks each have a single root
(origin) node; the unique-reception constraint C3 guarantees that the send
set of the source algorithm forms a tree per chunk, so the inverted
algorithm folds every node's partial into the root exactly once.

On asymmetric topologies the source algorithm must be synthesized on the
*reversed* topology so that the inverted sends travel over real links; the
``synthesize_reduce`` / ``synthesize_reducescatter`` / ``synthesize_allreduce``
helpers below take care of that.  All machines evaluated in the paper are
link-symmetric, in which case reversal is a no-op.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..collectives import Placement, all_nodes, get_collective
from ..topology import Topology
from .algorithm import Algorithm, AlgorithmError, Send, Step
from .instance import make_instance
from .synthesizer import SynthesisResult, synthesize


class CombiningError(Exception):
    """Raised when an algorithm cannot be inverted."""


def _chunk_origins(algorithm: Algorithm) -> Dict[int, int]:
    origins: Dict[int, int] = {}
    for (chunk, node) in algorithm.precondition:
        if chunk in origins and origins[chunk] != node:
            raise CombiningError(
                f"chunk {chunk} has multiple sources ({origins[chunk]}, {node}); "
                f"inversion requires a single root per chunk"
            )
        origins[chunk] = node
    return origins


def invert_algorithm(
    algorithm: Algorithm,
    *,
    collective: Optional[str] = None,
    name: Optional[str] = None,
    target_topology: Optional[Topology] = None,
    op: str = "reduce",
) -> Algorithm:
    """Invert a non-combining algorithm (Section 3.5).

    Every send ``(c, n -> n')`` at step ``s`` becomes ``(c, n' -> n)`` at
    step ``S - 1 - s``.  With ``op="reduce"`` the result is a combining
    algorithm (Reduce from Broadcast, Reducescatter from Allgather); with
    ``op="copy"`` it is the plain reversal (Scatter from Gather).

    ``target_topology`` is the topology the inverted algorithm runs on.  It
    defaults to the source algorithm's topology, which is correct whenever
    that topology is link-symmetric; otherwise pass the reverse topology the
    source was synthesized against.
    """
    if algorithm.combining:
        raise CombiningError("cannot invert an algorithm that is already combining")
    # Drop junk sends first: the inversion relies on every send lying on a
    # dependency path to the original postcondition (otherwise an inverted
    # sender may not hold the data it is supposed to return).
    algorithm = algorithm.pruned()
    origins = _chunk_origins(algorithm)
    topology = target_topology or algorithm.topology
    if target_topology is None and not algorithm.topology.is_symmetric():
        raise CombiningError(
            f"topology {algorithm.topology.name!r} is not link-symmetric; "
            f"synthesize the source algorithm on topology.reversed() and pass "
            f"target_topology explicitly"
        )

    num_steps = algorithm.num_steps
    combining = op == "reduce"
    inverted_steps: List[Step] = []
    for index in range(num_steps - 1, -1, -1):
        source_step = algorithm.steps[index]
        sends = tuple(
            Send(chunk=s.chunk, src=s.dst, dst=s.src, op=op) for s in source_step.sends
        )
        inverted_steps.append(Step(rounds=source_step.rounds, sends=sends))

    # The inverted pre-condition: everywhere the source algorithm ever placed
    # the chunk (i.e. its post-condition plus its pre-condition) now holds a
    # partial.  The inverted post-condition: the chunk's single origin.
    pre: set = set(algorithm.postcondition) | set(algorithm.precondition)
    post = frozenset((chunk, origin) for chunk, origin in origins.items())

    if collective is None:
        collective = {
            "Allgather": "Reducescatter",
            "Broadcast": "Reduce",
            "Gather": "Scatter",
        }.get(algorithm.collective, f"inverse_{algorithm.collective}")

    inverted = Algorithm(
        name=name or f"{collective.lower()}_from_{algorithm.name}",
        collective=collective,
        topology=topology,
        chunks_per_node=algorithm.chunks_per_node,
        num_chunks=algorithm.num_chunks,
        precondition=frozenset(pre),
        postcondition=post,
        steps=inverted_steps,
        combining=combining,
        metadata={"derived_from": algorithm.name, "inversion_op": op},
    )
    return inverted


def allreduce_from_allgather(
    allgather: Algorithm,
    *,
    name: Optional[str] = None,
    reducescatter: Optional[Algorithm] = None,
) -> Algorithm:
    """Build an Allreduce as Reducescatter (inverted Allgather) + Allgather.

    The resulting algorithm has per-node chunk count ``C_allreduce = G`` —
    every node's input buffer is divided into the Allgather's global chunk
    count — and ``S`` / ``R`` are twice the Allgather's, matching the
    Allreduce rows of Tables 4 and 5.
    """
    if allgather.collective != "Allgather":
        raise CombiningError(
            f"expected an Allgather algorithm, got {allgather.collective}"
        )
    rs = reducescatter or invert_algorithm(allgather)
    num_nodes = allgather.topology.num_nodes
    full = all_nodes(allgather.num_chunks, num_nodes)
    steps: List[Step] = []
    steps.extend(rs.steps)
    # The Allgather phase re-broadcasts the now fully-reduced chunks; its
    # sends are plain copies.
    steps.extend(allgather.steps)
    return Algorithm(
        name=name or f"allreduce_from_{allgather.name}",
        collective="Allreduce",
        topology=allgather.topology,
        chunks_per_node=allgather.num_chunks,
        num_chunks=allgather.num_chunks,
        precondition=full,
        postcondition=full,
        steps=steps,
        combining=True,
        metadata={
            "derived_from": allgather.name,
            "phase_split": rs.num_steps,
        },
    )


# ----------------------------------------------------------------------
# One-call synthesis helpers for combining collectives
# ----------------------------------------------------------------------
def synthesize_reducescatter(
    topology: Topology,
    chunks_per_node: int,
    steps: int,
    rounds: int,
    **kwargs,
) -> SynthesisResult:
    """Synthesize a Reducescatter by synthesizing Allgather on the reversed
    topology and inverting the result."""
    return _synthesize_inverse(
        topology, "Allgather", "Reducescatter", chunks_per_node, steps, rounds, **kwargs
    )


def synthesize_reduce(
    topology: Topology,
    chunks_per_node: int,
    steps: int,
    rounds: int,
    root: int = 0,
    **kwargs,
) -> SynthesisResult:
    """Synthesize a Reduce by inverting a Broadcast from the same root."""
    return _synthesize_inverse(
        topology, "Broadcast", "Reduce", chunks_per_node, steps, rounds, root=root, **kwargs
    )


def _synthesize_inverse(
    topology: Topology,
    source_collective: str,
    target_collective: str,
    chunks_per_node: int,
    steps: int,
    rounds: int,
    root: int = 0,
    **kwargs,
) -> SynthesisResult:
    reversed_topology = topology.reversed()
    instance = make_instance(
        source_collective, reversed_topology, chunks_per_node, steps, rounds, root=root
    )
    result = synthesize(instance, **kwargs)
    if result.algorithm is not None:
        inverted = invert_algorithm(
            result.algorithm,
            collective=target_collective,
            target_topology=topology,
        )
        inverted.verify()
        result.algorithm = inverted
    return result


def synthesize_allreduce(
    topology: Topology,
    allgather_chunks_per_node: int,
    allgather_steps: int,
    allgather_rounds: int,
    **kwargs,
) -> SynthesisResult:
    """Synthesize an Allreduce via the Reducescatter + Allgather composition.

    The reported ``(C, S, R)`` of the resulting algorithm are
    ``(P * C_ag, 2 * S_ag, 2 * R_ag)``.
    """
    instance = make_instance(
        "Allgather", topology, allgather_chunks_per_node, allgather_steps, allgather_rounds
    )
    result = synthesize(instance, **kwargs)
    if result.algorithm is not None:
        allreduce = allreduce_from_allgather(result.algorithm)
        allreduce.verify()
        result.algorithm = allreduce
    return result

"""Latency and bandwidth lower bounds used by Pareto-Synthesize (Algorithm 1).

The paper computes two lower bounds before enumerating instances:

* ``a_l`` — the latency lower bound, from the topology diameter.  We use
  the slightly sharper collective-aware version: the largest distance from
  a chunk's source set to a node that must receive it.  For Allgather and
  Broadcast-from-a-central-node this equals the diameter, matching the
  paper's numbers.
* ``b_l`` — the bandwidth lower bound ``R/C``, from the inverse bisection
  bandwidth.  We compute it as the tightest cut bound: for any node set
  ``W``, all chunks that are needed inside ``W`` but only available outside
  must cross into ``W`` through its incoming capacity.  Evaluated over
  single nodes and (for small P) all balanced bipartitions, this recovers
  the paper's 7/6 for DGX-1 Allgather and 1/3 for 24-chunk Alltoall.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..collectives import CollectiveSpec, Placement, get_collective
from ..topology import Topology, shortest_path_lengths
from ..topology.analysis import cut_capacity


class BoundsError(Exception):
    """Raised when a bound cannot be computed (e.g. unreachable node)."""


def latency_lower_bound(
    topology: Topology, precondition: Placement, postcondition: Placement
) -> int:
    """Minimum number of steps any algorithm needs for this pre/post pair."""
    distances = shortest_path_lengths(topology)
    sources: Dict[int, List[int]] = {}
    for (chunk, node) in precondition:
        sources.setdefault(chunk, []).append(node)
    worst = 0
    for (chunk, node) in postcondition:
        chunk_sources = sources.get(chunk)
        if not chunk_sources:
            raise BoundsError(f"chunk {chunk} required at node {node} but has no source")
        best = None
        for src in chunk_sources:
            d = distances.get(src, {}).get(node)
            if d is not None and (best is None or d < best):
                best = d
        if best is None:
            raise BoundsError(
                f"chunk {chunk} cannot reach node {node} on topology {topology.name!r}"
            )
        worst = max(worst, best)
    return max(worst, 1)


def _chunks_needed_inside(
    part: Set[int], precondition: Placement, postcondition: Placement
) -> int:
    """Chunks that some node in ``part`` needs but no node in ``part`` holds initially."""
    have = {c for (c, n) in precondition if n in part}
    needed = {c for (c, n) in postcondition if n in part}
    return len(needed - have)


def bandwidth_lower_bound(
    topology: Topology,
    precondition: Placement,
    postcondition: Placement,
    chunks_per_node: int,
    exact_bipartition_limit: int = 10,
) -> Fraction:
    """Lower bound on the bandwidth cost ``R / C``.

    For every considered node set ``W``: at least ``needed(W)`` chunks must
    enter ``W`` and at most ``cap_in(W)`` chunks can enter per round, so
    ``R >= needed(W) / cap_in(W)`` and hence ``R / C >= needed(W) / (cap_in(W) * C)``.
    The ratio is invariant under scaling the per-node chunk count, so the
    bound computed for one instance applies to all chunk granularities.
    """
    if chunks_per_node <= 0:
        raise BoundsError("chunks_per_node must be positive")
    nodes = list(topology.nodes())
    candidates: List[Set[int]] = [{n} for n in nodes]
    if len(nodes) <= exact_bipartition_limit and len(nodes) >= 2:
        half = len(nodes) // 2
        for subset in combinations(nodes, half):
            candidates.append(set(subset))
            candidates.append(set(nodes) - set(subset))
    best = Fraction(0)
    for part in candidates:
        needed = _chunks_needed_inside(part, precondition, postcondition)
        if needed == 0:
            continue
        capacity = cut_capacity(topology, part)
        if capacity == 0:
            raise BoundsError(
                f"nodes {sorted(part)} need {needed} chunks but have no incoming links"
            )
        bound = Fraction(needed, capacity * chunks_per_node)
        if bound > best:
            best = bound
    return best


def lower_bounds(
    collective: str,
    topology: Topology,
    root: int = 0,
    reference_chunks_per_node: Optional[int] = None,
) -> Tuple[int, Fraction]:
    """Compute ``(a_l, b_l)`` for a named non-combining collective.

    ``reference_chunks_per_node`` picks the instance used to evaluate the
    (granularity-invariant) bounds; it defaults to the smallest count that
    yields a balanced instance for the collective.
    """
    spec: CollectiveSpec = get_collective(collective)
    if spec.combining:
        raise BoundsError(
            f"{spec.name} is synthesized via {spec.inverse_of}; compute bounds for that"
        )
    if reference_chunks_per_node is None:
        reference_chunks_per_node = (
            topology.num_nodes if spec.name == "Alltoall" else 1
        )
    pre = spec.precondition(topology.num_nodes, reference_chunks_per_node, root)
    post = spec.postcondition(topology.num_nodes, reference_chunks_per_node, root)
    a_l = latency_lower_bound(topology, pre, post)
    b_l = bandwidth_lower_bound(topology, pre, post, reference_chunks_per_node)
    return a_l, b_l

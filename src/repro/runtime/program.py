"""Per-rank program IR — the lowering target for synthesized algorithms.

Section 4 of the paper describes SCCL's code generation: each GPU gets its
own code under a top-level switch, communication happens by writing into
remote buffers through IPC pointers, and steps are separated either by
kernel launches (multi-kernel mode) or by flag-based signal/wait inside a
single fused kernel.

Because this reproduction has no GPUs, the lowering target is an explicit
per-rank instruction list that the functional executor
(:mod:`repro.runtime.executor`) and the discrete-event simulator
(:mod:`repro.runtime.simulator`) both consume, and that the CUDA-like code
emitter (:mod:`repro.runtime.codegen`) pretty-prints.  The instruction set
mirrors what the generated CUDA does:

* ``SEND`` — write a chunk into a peer's buffer (push model) and raise the
  peer's flag for that chunk,
* ``RECV`` / ``RECV_REDUCE`` — wait on the local flag for a chunk written
  by a peer (and optionally fold it into the local accumulator),
* ``BARRIER`` — step boundary (kernel re-launch in multi-kernel mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class ProgramError(Exception):
    """Raised for malformed programs."""


class OpCode(Enum):
    SEND = "send"
    RECV = "recv"
    RECV_REDUCE = "recv_reduce"
    BARRIER = "barrier"


@dataclass(frozen=True)
class Instruction:
    """One instruction of a rank program.

    ``chunk`` and ``peer`` are meaningful for SEND/RECV/RECV_REDUCE;
    ``step`` records which synchronous step of the source algorithm the
    instruction implements (used for simulation and reporting).
    """

    op: OpCode
    chunk: int = -1
    peer: int = -1
    step: int = -1

    def __str__(self) -> str:
        if self.op is OpCode.BARRIER:
            return f"barrier(step={self.step})"
        return f"{self.op.value}(chunk={self.chunk}, peer={self.peer}, step={self.step})"


@dataclass
class RankProgram:
    """The instruction sequence executed by one rank."""

    rank: int
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def sends(self) -> List[Instruction]:
        return [i for i in self.instructions if i.op is OpCode.SEND]

    def receives(self) -> List[Instruction]:
        return [i for i in self.instructions if i.op in (OpCode.RECV, OpCode.RECV_REDUCE)]

    def transfers_by_peer(self) -> Dict[int, Dict[str, List[Instruction]]]:
        """Data-movement instructions grouped by peer.

        Returns ``{peer: {"send": [...], "recv": [...]}}`` with instructions
        in program order.  BARRIERs carry no peer and are excluded.  The
        MSCCL-style XML emitter uses this grouping to assign one threadblock
        per communicating peer, mirroring how the real MSCCL runtime binds a
        threadblock to a (send-peer, recv-peer) connection pair.
        """
        peers: Dict[int, Dict[str, List[Instruction]]] = {}
        for instruction in self.instructions:
            if instruction.op is OpCode.BARRIER:
                continue
            bucket = peers.setdefault(instruction.peer, {"send": [], "recv": []})
            kind = "send" if instruction.op is OpCode.SEND else "recv"
            bucket[kind].append(instruction)
        return peers

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class Program:
    """A whole-machine program: one :class:`RankProgram` per rank.

    ``num_chunks`` is the number of chunk slots in every rank's buffer;
    ``chunks_per_node`` is carried through from the algorithm for sizing
    (a chunk holds ``size_bytes / chunks_per_node`` bytes for non-combining
    collectives operating on a per-node buffer of ``size_bytes``).
    """

    name: str
    collective: str
    num_ranks: int
    num_chunks: int
    chunks_per_node: int
    ranks: List[RankProgram] = field(default_factory=list)
    protocol: str = "single_kernel_push"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.ranks:
            self.ranks = [RankProgram(rank=r) for r in range(self.num_ranks)]
        if len(self.ranks) != self.num_ranks:
            raise ProgramError(
                f"expected {self.num_ranks} rank programs, got {len(self.ranks)}"
            )

    def rank(self, index: int) -> RankProgram:
        if not 0 <= index < self.num_ranks:
            raise ProgramError(f"rank {index} out of range")
        return self.ranks[index]

    @property
    def num_steps(self) -> int:
        return 1 + max(
            (i.step for rank in self.ranks for i in rank.instructions), default=-1
        )

    def total_instructions(self) -> int:
        return sum(len(rank) for rank in self.ranks)

    def sends_at_step(self, step: int) -> List[Tuple[int, Instruction]]:
        """All SENDs scheduled for a given synchronous step, as (rank, instr)."""
        result = []
        for rank in self.ranks:
            for instruction in rank.instructions:
                if instruction.op is OpCode.SEND and instruction.step == step:
                    result.append((rank.rank, instruction))
        return result

    def validate(self) -> None:
        """Structural checks: matched send/recv pairs per (chunk, step, link)."""
        sends: Dict[Tuple[int, int, int, int], int] = {}
        recvs: Dict[Tuple[int, int, int, int], int] = {}
        for rank in self.ranks:
            for instr in rank.instructions:
                if instr.op is OpCode.SEND:
                    key = (instr.chunk, rank.rank, instr.peer, instr.step)
                    sends[key] = sends.get(key, 0) + 1
                elif instr.op in (OpCode.RECV, OpCode.RECV_REDUCE):
                    key = (instr.chunk, instr.peer, rank.rank, instr.step)
                    recvs[key] = recvs.get(key, 0) + 1
        if sends != recvs:
            missing = set(sends) ^ set(recvs)
            raise ProgramError(
                f"unmatched send/recv pairs for (chunk, src, dst, step) in {sorted(missing)[:5]}"
            )

    def describe(self) -> str:
        lines = [
            f"Program {self.name!r} ({self.collective}), {self.num_ranks} ranks, "
            f"{self.num_chunks} chunk slots, protocol {self.protocol}"
        ]
        for rank in self.ranks:
            lines.append(f"  rank {rank.rank}: {len(rank)} instructions")
            for instruction in rank.instructions:
                lines.append(f"    {instruction}")
        return "\n".join(lines)

"""Functional executor: run a lowered program on real (numpy) buffers.

This is the correctness half of the hardware substitute.  Every rank gets
a buffer with one slot per global chunk; SENDs copy slots between ranks'
buffers, RECV_REDUCE folds them with ``+``.  After execution the buffers
are checked against the collective's mathematical definition, which gives
an end-to-end test of synthesis + lowering that does not depend on the
algorithm verifier (the two are implemented independently on purpose).

Buffers hold ``float64`` values; each rank's initial contribution for chunk
``c`` is a deterministic pseudo-random value derived from ``(rank, c)``, so
reductions are exact (sums of distinct integers) and misplaced chunks are
detected reliably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..collectives import get_collective
from ..core.algorithm import Algorithm
from .program import OpCode, Program, ProgramError


class ExecutionError(Exception):
    """Raised when execution fails or produces wrong results."""


def _input_value(rank: int, chunk: int) -> float:
    """Deterministic distinct contribution of ``rank`` for ``chunk``."""
    return float(rank * 1_000_003 + chunk * 97 + 1)


@dataclass
class ExecutionResult:
    """Final buffers plus bookkeeping from a functional run."""

    buffers: np.ndarray            # shape (ranks, chunks), NaN = absent
    transfers: int = 0
    reduced_transfers: int = 0
    steps_executed: int = 0

    def chunk_present(self, rank: int, chunk: int) -> bool:
        return not np.isnan(self.buffers[rank, chunk])


class Executor:
    """Execute a :class:`~repro.runtime.program.Program` step by step."""

    def __init__(self, program: Program, algorithm: Algorithm) -> None:
        self.program = program
        self.algorithm = algorithm
        self.num_ranks = program.num_ranks
        self.num_chunks = program.num_chunks

    # ------------------------------------------------------------------
    # Initial buffer state
    # ------------------------------------------------------------------
    def initial_buffers(self) -> np.ndarray:
        buffers = np.full((self.num_ranks, self.num_chunks), np.nan)
        for (chunk, node) in self.algorithm.precondition:
            if self.algorithm.combining:
                buffers[node, chunk] = _input_value(node, chunk)
            else:
                origin = min(n for (c, n) in self.algorithm.precondition if c == chunk)
                buffers[node, chunk] = _input_value(origin, chunk)
        return buffers

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        buffers = self.initial_buffers()
        result = ExecutionResult(buffers=buffers)
        num_steps = self.program.num_steps
        for step in range(num_steps):
            # Synchronous step semantics: all sends read the buffer state at
            # the start of the step (matching V_s -> V_{s+1} in the paper).
            snapshot = buffers.copy()
            arrivals: List[Tuple[int, int, float, bool]] = []
            for rank_program in self.program.ranks:
                rank = rank_program.rank
                for instr in rank_program.instructions:
                    if instr.step != step or instr.op is not OpCode.SEND:
                        continue
                    value = snapshot[rank, instr.chunk]
                    if np.isnan(value):
                        raise ExecutionError(
                            f"step {step}: rank {rank} sends chunk {instr.chunk} "
                            f"before it is available"
                        )
                    arrivals.append((instr.peer, instr.chunk, value, False))
            # Match arrivals against the receive instructions to honour the
            # reduce/copy distinction recorded at lowering time.
            reduce_keys = self._reduce_keys(step)
            for (dst, chunk, value, _) in arrivals:
                if (dst, chunk) in reduce_keys:
                    current = buffers[dst, chunk]
                    buffers[dst, chunk] = value if np.isnan(current) else current + value
                    result.reduced_transfers += 1
                else:
                    buffers[dst, chunk] = value
                result.transfers += 1
            result.steps_executed += 1
        result.buffers = buffers
        return result

    def _reduce_keys(self, step: int) -> Set[Tuple[int, int]]:
        keys: Set[Tuple[int, int]] = set()
        for rank_program in self.program.ranks:
            for instr in rank_program.instructions:
                if instr.step == step and instr.op is OpCode.RECV_REDUCE:
                    keys.add((rank_program.rank, instr.chunk))
        return keys

    # ------------------------------------------------------------------
    # Result checking
    # ------------------------------------------------------------------
    def expected_value(self, chunk: int, node: int) -> Optional[float]:
        """The mathematically expected buffer value at (node, chunk), or None if unconstrained."""
        if (chunk, node) not in self.algorithm.postcondition:
            return None
        if self.algorithm.combining:
            contributors = sorted(
                n for (c, n) in self.algorithm.precondition if c == chunk
            )
            return float(sum(_input_value(n, chunk) for n in contributors))
        origin = min(n for (c, n) in self.algorithm.precondition if c == chunk)
        return _input_value(origin, chunk)

    def check(self, result: ExecutionResult) -> None:
        """Verify the final buffers against the collective's definition."""
        for (chunk, node) in self.algorithm.postcondition:
            expected = self.expected_value(chunk, node)
            actual = result.buffers[node, chunk]
            if np.isnan(actual):
                raise ExecutionError(
                    f"chunk {chunk} missing at rank {node} after execution"
                )
            if expected is not None and not np.isclose(actual, expected):
                raise ExecutionError(
                    f"chunk {chunk} at rank {node}: expected {expected}, got {actual}"
                )


def execute(program: Program, algorithm: Algorithm, check: bool = True) -> ExecutionResult:
    """Convenience wrapper: run a program and (optionally) check its output."""
    executor = Executor(program, algorithm)
    result = executor.run()
    if check:
        executor.check(result)
    return result

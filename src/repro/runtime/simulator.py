"""Discrete-event alpha-beta interconnect simulator (the hardware substitute).

The paper evaluates generated code on real DGX-1 and Gigabyte Z52 machines.
Without that hardware, this simulator estimates the wall-clock time of a
lowered program from the same first-order effects the paper discusses in
Sections 2.3, 4 and 5.5:

* **alpha-beta links.**  Each directed link transfers a message of ``L``
  bytes in ``link_alpha + L * beta_link`` seconds where ``beta_link`` is the
  per-byte time of that link (a double-NVLink DGX-1 edge has half the beta
  of a single-NVLink edge).
* **Synchronous steps.**  A step completes when its slowest link finishes
  all transfers assigned to it (sends on the same link serialize; sends on
  different links proceed in parallel).  This directly mirrors the cost
  model ``S * alpha + (R / C) * L * beta``.
* **Protocol overheads.**  The fused single-kernel protocol pays one kernel
  launch plus a per-step flag-synchronization cost; the multi-kernel
  protocol pays a kernel launch per step; the cudaMemcpy protocol pays a
  higher per-transfer fixed cost but enjoys ~10% higher link bandwidth
  (DMA engines emit full-size packets), and additionally cannot fuse
  reductions into the copy.

The absolute numbers are not meant to match the paper's testbed; the *shape*
of the comparisons (which algorithm wins at which buffer size) is what the
evaluation harness reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.algorithm import Algorithm
from ..topology import DEFAULT_LINK_LATENCY_S, Topology
from .program import OpCode, Program


class SimulationError(Exception):
    """Raised for inconsistent simulation inputs."""


@dataclass
class ProtocolModel:
    """Tunable cost parameters of a lowering protocol."""

    name: str
    kernel_launch_s: float          # paid once (fused) or per step (multi kernel)
    per_step_sync_s: float          # flag/barrier synchronization per step
    per_transfer_fixed_s: float     # per-message fixed cost (packet header, API call)
    bandwidth_multiplier: float     # >1 means faster than the baseline kernel copy


#: Protocol models; numbers follow the qualitative statements in Section 4
#: (DMA ~10% higher bandwidth, push copies avoid request/response overhead,
#: per-step kernel launches cost microseconds).
DEFAULT_PROTOCOLS: Dict[str, ProtocolModel] = {
    "single_kernel_push": ProtocolModel(
        name="single_kernel_push",
        kernel_launch_s=5e-6,
        per_step_sync_s=1.5e-6,
        per_transfer_fixed_s=0.4e-6,
        bandwidth_multiplier=1.0,
    ),
    "multi_kernel_push": ProtocolModel(
        name="multi_kernel_push",
        kernel_launch_s=0.0,
        per_step_sync_s=6.5e-6,     # one kernel launch per step
        per_transfer_fixed_s=0.4e-6,
        bandwidth_multiplier=1.0,
    ),
    "multi_kernel_memcpy": ProtocolModel(
        name="multi_kernel_memcpy",
        kernel_launch_s=0.0,
        per_step_sync_s=8e-6,       # kernel launch + memcpy API overhead per step
        per_transfer_fixed_s=2.5e-6,
        bandwidth_multiplier=1.10,  # DMA engines: ~10% better than kernel copies
    ),
}


@dataclass
class StepTiming:
    """Timing breakdown of one synchronous step."""

    step: int
    transfers: int
    bytes_on_busiest_link: float
    duration_s: float
    link_times: Dict[Tuple[int, int], float] = field(default_factory=dict)


@dataclass
class SimulationResult:
    """Outcome of simulating one program at one input size."""

    program_name: str
    protocol: str
    size_bytes: float
    total_time_s: float
    step_timings: List[StepTiming] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.step_timings)

    def algorithmic_bandwidth(self) -> float:
        """Bytes per second of collective payload (size / time)."""
        if self.total_time_s <= 0:
            raise SimulationError("non-positive simulated time")
        return self.size_bytes / self.total_time_s


class Simulator:
    """Simulate lowered programs on a topology."""

    def __init__(
        self,
        topology: Topology,
        protocols: Optional[Dict[str, ProtocolModel]] = None,
    ) -> None:
        self.topology = topology
        self.protocols = dict(DEFAULT_PROTOCOLS)
        if protocols:
            self.protocols.update(protocols)
        self._capacity = topology.link_capacity()

    # ------------------------------------------------------------------
    def chunk_bytes(self, program: Program, size_bytes: float) -> float:
        """Bytes per chunk for a per-node input buffer of ``size_bytes``."""
        if program.chunks_per_node <= 0:
            raise SimulationError("program has no chunks")
        return size_bytes / program.chunks_per_node

    def link_beta(self, src: int, dst: int, protocol: ProtocolModel) -> float:
        """Per-byte time of a directed link under a protocol."""
        capacity = self._capacity.get((src, dst), 0)
        if capacity <= 0:
            raise SimulationError(f"no link {src}->{dst} in topology {self.topology.name!r}")
        # A capacity-b link aggregates b unit-bandwidth lanes (e.g. the
        # double-NVLink DGX-1 edges), so its per-byte time is beta / b.
        # Fault models inflate individual links via ``link_beta_scale``.
        scale = self.topology.link_beta_scale.get((src, dst), 1.0)
        return self.topology.beta * scale / (capacity * protocol.bandwidth_multiplier)

    def link_alpha(self, src: int, dst: int) -> float:
        return self.topology.link_latency.get((src, dst), DEFAULT_LINK_LATENCY_S)

    # ------------------------------------------------------------------
    def simulate(self, program: Program, size_bytes: float) -> SimulationResult:
        """Simulate a program for a per-node input of ``size_bytes`` bytes."""
        protocol = self.protocols.get(program.protocol)
        if protocol is None:
            raise SimulationError(f"no cost model for protocol {program.protocol!r}")
        chunk_bytes = self.chunk_bytes(program, size_bytes)

        total = protocol.kernel_launch_s
        timings: List[StepTiming] = []
        for step in range(program.num_steps):
            sends = program.sends_at_step(step)
            # Bytes pushed over each directed link this step; sends over the
            # same link serialize, different links run in parallel.
            per_link_bytes: Dict[Tuple[int, int], float] = {}
            per_link_msgs: Dict[Tuple[int, int], int] = {}
            for (src, instr) in sends:
                link = (src, instr.peer)
                per_link_bytes[link] = per_link_bytes.get(link, 0.0) + chunk_bytes
                per_link_msgs[link] = per_link_msgs.get(link, 0) + 1
            link_times: Dict[Tuple[int, int], float] = {}
            for link, payload in per_link_bytes.items():
                beta = self.link_beta(link[0], link[1], protocol)
                messages = per_link_msgs[link]
                link_times[link] = (
                    self.link_alpha(*link)
                    + messages * protocol.per_transfer_fixed_s
                    + payload * beta
                )
            busiest = max(link_times.values(), default=0.0)
            duration = protocol.per_step_sync_s + busiest
            total += duration
            timings.append(
                StepTiming(
                    step=step,
                    transfers=len(sends),
                    bytes_on_busiest_link=max(per_link_bytes.values(), default=0.0),
                    duration_s=duration,
                    link_times=link_times,
                )
            )
        return SimulationResult(
            program_name=program.name,
            protocol=program.protocol,
            size_bytes=size_bytes,
            total_time_s=total,
            step_timings=timings,
        )

    # ------------------------------------------------------------------
    def simulate_algorithm(
        self,
        algorithm: Algorithm,
        size_bytes: float,
        protocol: str = "single_kernel_push",
    ) -> SimulationResult:
        """Lower and simulate in one call."""
        from .lowering import lower

        program = lower(algorithm, protocol=protocol)
        return self.simulate(program, size_bytes)

    def sweep(
        self,
        algorithm: Algorithm,
        sizes_bytes: List[float],
        protocol: str = "single_kernel_push",
    ) -> List[SimulationResult]:
        """Simulate one algorithm across a range of input sizes."""
        from .lowering import lower

        program = lower(algorithm, protocol=protocol)
        return [self.simulate(program, size) for size in sizes_bytes]


def simulate(
    algorithm_or_program,
    topology: Topology,
    size_bytes: float,
    protocol: str = "single_kernel_push",
) -> SimulationResult:
    """Module-level convenience wrapper used by the examples."""
    simulator = Simulator(topology)
    if isinstance(algorithm_or_program, Program):
        return simulator.simulate(algorithm_or_program, size_bytes)
    return simulator.simulate_algorithm(algorithm_or_program, size_bytes, protocol=protocol)

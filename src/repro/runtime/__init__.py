"""Runtime substrate: lowering, execution, simulation and code generation."""

from .codegen import CodegenError, generate_cuda_like_source, write_source
from .executor import ExecutionError, ExecutionResult, Executor, execute
from .lowering import PROTOCOLS, LoweringError, lower, lower_all_protocols, lower_cached
from .program import Instruction, OpCode, Program, ProgramError, RankProgram
from .simulator import (
    DEFAULT_PROTOCOLS,
    ProtocolModel,
    SimulationError,
    SimulationResult,
    Simulator,
    StepTiming,
    simulate,
)

__all__ = [
    "CodegenError",
    "DEFAULT_PROTOCOLS",
    "ExecutionError",
    "ExecutionResult",
    "Executor",
    "Instruction",
    "LoweringError",
    "OpCode",
    "PROTOCOLS",
    "Program",
    "ProgramError",
    "ProtocolModel",
    "RankProgram",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "StepTiming",
    "execute",
    "generate_cuda_like_source",
    "lower",
    "lower_all_protocols",
    "lower_cached",
    "simulate",
    "write_source",
]

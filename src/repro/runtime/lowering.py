"""Lowering: turn an :class:`~repro.core.algorithm.Algorithm` into a per-rank program.

The lowering mirrors Section 4 of the paper.  A synthesized algorithm is a
sequence of synchronous steps, each a set of sends.  For every step and
every rank the lowering emits:

* a ``SEND`` per outgoing chunk transfer (push model: the sender writes the
  remote buffer and raises the destination's flag),
* a ``RECV`` (or ``RECV_REDUCE`` for combining transfers) per incoming
  transfer, and
* a ``BARRIER`` at the end of the step when the multi-kernel protocol is
  selected; the fused single-kernel protocol relies on per-chunk flags only
  and carries no global barrier.

Protocols
---------
``single_kernel_push`` (default)
    One fused kernel; only flag-based synchronization between peers.
``multi_kernel_push``
    One kernel launch per step, adding a per-step barrier/launch overhead.
``multi_kernel_memcpy``
    Per-step cudaMemcpy-based data movement (DMA engines): higher fixed
    per-transfer cost, slightly higher bandwidth (the "(6,7,7) cudamemcpy"
    series of Figure 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.algorithm import Algorithm
from .program import Instruction, OpCode, Program, ProgramError, RankProgram

#: Protocols understood by the lowering, simulator and code generator.
PROTOCOLS = ("single_kernel_push", "multi_kernel_push", "multi_kernel_memcpy")


class LoweringError(Exception):
    """Raised when an algorithm cannot be lowered."""


def lower(
    algorithm: Algorithm,
    protocol: str = "single_kernel_push",
    name: Optional[str] = None,
) -> Program:
    """Lower an algorithm to a :class:`~repro.runtime.program.Program`.

    The algorithm is verified first; lowering an invalid schedule is always
    a bug upstream.
    """
    if protocol not in PROTOCOLS:
        raise LoweringError(f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}")
    algorithm.verify()

    program = Program(
        name=name or f"{algorithm.name}_{protocol}",
        collective=algorithm.collective,
        num_ranks=algorithm.topology.num_nodes,
        num_chunks=algorithm.num_chunks,
        chunks_per_node=algorithm.chunks_per_node,
        protocol=protocol,
        metadata={
            "algorithm": algorithm.name,
            "signature": algorithm.signature(),
            "topology": algorithm.topology.name,
        },
    )

    barrier_per_step = protocol.startswith("multi_kernel")
    for step_index, step in enumerate(algorithm.steps):
        # Emit sends first, then receives: under the push model the sender
        # writes remote memory and the receiver only waits on its flag, so
        # per-rank ordering within a step does not matter; a deterministic
        # order keeps programs reproducible.
        for send in step.sends:
            program.rank(send.src).append(
                Instruction(op=OpCode.SEND, chunk=send.chunk, peer=send.dst, step=step_index)
            )
            recv_op = OpCode.RECV_REDUCE if send.op == "reduce" else OpCode.RECV
            program.rank(send.dst).append(
                Instruction(op=recv_op, chunk=send.chunk, peer=send.src, step=step_index)
            )
        if barrier_per_step:
            for rank in range(program.num_ranks):
                program.rank(rank).append(Instruction(op=OpCode.BARRIER, step=step_index))

    program.validate()
    return program


def lower_all_protocols(algorithm: Algorithm) -> Dict[str, Program]:
    """Lower an algorithm under every protocol (used by the lowering ablation)."""
    return {protocol: lower(algorithm, protocol) for protocol in PROTOCOLS}


def lower_cached(
    cache,
    collective: str,
    topology,
    chunks_per_node: int,
    steps: int,
    rounds: int,
    *,
    root: int = 0,
    protocol: str = "single_kernel_push",
    name: Optional[str] = None,
) -> Program:
    """Lower an algorithm persisted in an engine :class:`AlgorithmCache`.

    This is the runtime's entry into the same content-addressed store the
    synthesizer and the evaluation harness use: serving a collective that a
    previous run already synthesized costs a JSON load, a verification and a
    lowering — no solver.  Raises :class:`LoweringError` when the candidate
    has no verified cache entry.
    """
    algorithm = cache.load_algorithm(
        collective, topology, chunks_per_node, steps, rounds, root=root
    )
    if algorithm is None:
        raise LoweringError(
            f"no cached algorithm for {collective} on {topology.name} "
            f"(C={chunks_per_node}, S={steps}, R={rounds}); synthesize it first"
        )
    return lower(algorithm, protocol=protocol, name=name)

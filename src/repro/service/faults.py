"""The service's fault board: live fault state keyed by topology.

The board is the single mutable piece of fault-tolerance state in the
planning service.  Operators register :class:`~repro.faults.Fault`\\ s
against a topology (``POST /v1/fault`` / ``repro fault``); every
subsequent plan request for that topology is resolved against the
*degraded* topology the active :class:`~repro.faults.FaultSet` derives.

Two integration points matter:

* :meth:`FaultBoard.apply` is called by the resolver before any registry
  lookup or synthesis, so cache keys, routing keys and verification all
  see the degraded topology — a plan can never silently route over a
  link the operator declared dead.
* :meth:`FaultBoard.salted_key` is the broker's key function.  Request
  keys are salted with the active fault fingerprint so a request issued
  *after* a fault registration never coalesces with an in-flight
  synthesis that still targets the healthy fabric.

Entries are keyed by the *structural* topology fingerprint: two spec
strings that parse to the same fabric (``dgx1`` vs. an equivalent
explicit spec) share one fault set.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Optional

from ..faults import FaultError, FaultSet
from ..interchange.plan import topology_fingerprint
from ..telemetry import get_metrics
from ..topology import Topology
from .api import FaultRequest, FaultResponse, PlanRequest, ServiceError


class FaultBoard:
    """Thread-safe registry of active fault sets, one per topology."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._faults: Dict[str, FaultSet] = {}
        self._names: Dict[str, str] = {}  # fingerprint -> last seen topology name

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def register(self, topology: Topology, fault_set: FaultSet) -> FaultSet:
        """Merge ``fault_set`` into the board; returns the active set.

        The merged set is validated against the *healthy* topology before
        it is installed, so a bad registration leaves the board untouched.
        """
        key = topology_fingerprint(topology)
        with self._lock:
            merged = self._faults.get(key, FaultSet.of()).merge(fault_set)
            merged.validate(topology)
            if merged:
                self._faults[key] = merged
                self._names[key] = topology.name
            return merged

    def clear(self, topology: Topology) -> FaultSet:
        """Drop every fault registered for ``topology``; returns what was dropped."""
        key = topology_fingerprint(topology)
        with self._lock:
            self._names.pop(key, None)
            return self._faults.pop(key, FaultSet.of())

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, topology: Topology) -> FaultSet:
        with self._lock:
            return self._faults.get(topology_fingerprint(topology), FaultSet.of())

    def apply(self, topology: Topology) -> Topology:
        """The topology plans must target: degraded when faults are active."""
        fault_set = self.get(topology)
        return fault_set.apply(topology) if fault_set else topology

    def salt(self, topology: Topology) -> str:
        """Fault fingerprint for the active set; ``""`` when healthy."""
        fault_set = self.get(topology)
        return fault_set.fingerprint() if fault_set else ""

    def salted_key(self, request: PlanRequest) -> str:
        """Broker key function: the request key, salted by active faults.

        Healthy topologies get the unsalted key, so coalescing/caching
        behaviour is byte-identical to a service without a fault board.
        """
        key = request.request_key()
        salt = self.salt(request.resolve_topology())
        if not salt:
            return key
        return hashlib.sha256(f"{key}:{salt}".encode("utf-8")).hexdigest()

    def snapshot(self) -> Dict[str, object]:
        """Stats payload: active fault sets by topology."""
        with self._lock:
            return {
                "active_topologies": len(self._faults),
                "faults": {
                    self._names.get(key, key[:12]): [f.describe() for f in fault_set]
                    for key, fault_set in sorted(self._faults.items())
                },
            }


def _degraded_summary(topology: Topology, degraded: Topology) -> Dict[str, object]:
    healthy_links = set(topology.links())
    degraded_links = set(degraded.links())
    return {
        "name": degraded.name,
        "num_nodes": degraded.num_nodes,
        "links": len(degraded_links),
        "links_removed": len(healthy_links - degraded_links),
        "fingerprint": topology_fingerprint(degraded),
    }


def apply_fault_request(
    board: FaultBoard,
    request: FaultRequest,
    *,
    registry: Optional[object] = None,
) -> FaultResponse:
    """Execute one :class:`FaultRequest` against the board.

    ``register`` and ``clear`` additionally invalidate the registry's
    routing tables and cache entries for the affected topology (both the
    healthy and — on clear — the previously degraded one), so no stale
    plan survives a fault-state transition.
    """
    try:
        topology = request.resolve_topology()
        if request.action == "register":
            active = board.register(topology, request.fault_set())
        elif request.action == "clear":
            cleared = board.clear(topology)
            active = FaultSet.of()
        else:
            active = board.get(topology)
    except (FaultError, ServiceError) as exc:
        return FaultResponse(
            status="error",
            topology=request.topology,
            action=request.action,
            error=str(exc),
        )

    invalidated = None
    if registry is not None and request.action in ("register", "clear"):
        invalidated = registry.invalidate(topology)
        if request.action == "clear" and cleared:
            stale = registry.invalidate(cleared.apply(topology))
            invalidated = {
                name: invalidated.get(name, 0) + stale.get(name, 0)
                for name in set(invalidated) | set(stale)
            }
        metrics = get_metrics()
        for kind, count in invalidated.items():
            if count:
                metrics.inc(
                    "repro_fault_invalidations_total",
                    value=float(count), kind=kind,
                )

    degraded = None
    if active:
        degraded = _degraded_summary(topology, active.apply(topology))
    return FaultResponse(
        status="ok",
        topology=request.topology,
        action=request.action,
        faults=active.to_json(),
        fingerprint=active.fingerprint() if active else "",
        degraded=degraded,
        invalidated=invalidated,
    )

"""Thread-safe request broker with in-flight coalescing.

The broker sits between N concurrent callers and a small pool of planning
workers.  Its one invariant is the serving economics of the ROADMAP's
north star: *identical in-flight requests trigger exactly one unit of
work*.  ``submit`` hashes the request (content-addressed, see
:meth:`~repro.service.api.PlanRequest.request_key`); if a job with the same
key is already queued or running, the caller's ticket joins that job
instead of enqueueing a second one.  When the job completes, every
attached ticket receives its own copy of the shared response, annotated
with the caller-specific wait time and a ``coalesced`` flag.

Deadlines and cancellation are caller-side: :meth:`Ticket.wait` gives up
after the request's deadline and returns a ``timeout`` response;
:meth:`Ticket.cancel` detaches the ticket immediately.  In both cases the
underlying job keeps running if it has other waiters — and if it has
*none* and has not started yet, it is dropped from the queue entirely.  A
job that already started is never aborted: its result still lands in the
algorithm cache and the registry, so the work benefits the next caller
(opportunistic, in the PopPy sense: extra completed work is never wasted,
merely unclaimed).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from ..telemetry import get_metrics
from .api import PlanRequest, PlanResponse, ServiceError

#: Server-side ceiling on deadline-less waits.  A ticket whose request has
#: no deadline must still not block its caller thread forever: a wedged
#: resolver would otherwise pin HTTP threads indefinitely.
DEFAULT_MAX_WAIT_S = 3600.0


class BrokerError(ServiceError):
    """Raised for invalid broker operations."""


@dataclass
class BrokerStats:
    """Monotonic counters; read via :meth:`Broker.stats`.

    Counters accumulate for the life of the *broker object*, which may
    span several :class:`~repro.service.workers.PlanningService` start /
    stop cycles — a restart must not silently zero the series a scraper
    is watching.  ``since`` (wall epoch) dates the window the counters
    cover; :meth:`reset` zeroes them and restamps it, for tests and for
    operators who want a fresh window.
    """

    submitted: int = 0
    coalesced: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0      # tickets detached by Ticket.cancel()
    expired: int = 0        # tickets that gave up waiting (deadline)
    dropped_jobs: int = 0   # queued jobs abandoned by all their waiters
    resolver_crashes: int = 0  # jobs failed by a resolver exception
    since: float = field(default_factory=time.time)
    since_monotonic: float = field(default_factory=time.monotonic)

    def reset(self) -> None:
        self.submitted = 0
        self.coalesced = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.expired = 0
        self.dropped_jobs = 0
        self.resolver_crashes = 0
        self.since = time.time()
        self.since_monotonic = time.monotonic()

    def as_dict(self) -> Dict[str, float]:
        data = {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "expired": self.expired,
            "dropped_jobs": self.dropped_jobs,
            "resolver_crashes": self.resolver_crashes,
            "since": self.since,
            "uptime_s": time.monotonic() - self.since_monotonic,
        }
        data["coalescing_ratio"] = (
            self.coalesced / self.submitted if self.submitted else 0.0
        )
        return data


class Job:
    """One unit of planning work shared by every coalesced ticket."""

    __slots__ = ("key", "request", "tickets", "started", "dropped", "created_at")

    def __init__(self, key: str, request: PlanRequest) -> None:
        self.key = key
        self.request = request
        self.tickets: List["Ticket"] = []
        self.started = False
        self.dropped = False
        self.created_at = time.monotonic()

    def remaining_s(self) -> Optional[float]:
        """The most patient waiter's remaining deadline (None = no limit).

        Workers pass this to the engine as the solve time limit: the job
        keeps solving as long as *some* waiter is still willing to wait,
        but a job whose every waiter is about to give up does not solve
        forever.
        """
        waiters = list(self.tickets)  # snapshot: callers may detach concurrently
        deadlines = [
            t.submitted_at + t.request.deadline_s
            for t in waiters
            if t.request.deadline_s is not None
        ]
        if not deadlines or len(deadlines) != len(waiters):
            return None  # at least one waiter is unbounded
        return max(0.0, max(deadlines) - time.monotonic())


class Ticket:
    """One caller's handle on a (possibly shared) job."""

    def __init__(self, broker: "Broker", job: Job, request: PlanRequest, *, coalesced: bool) -> None:
        self._broker = broker
        self._job = job
        self.request = request
        self.coalesced = coalesced
        self.submitted_at = time.monotonic()
        self._event = threading.Event()
        self._response: Optional[PlanResponse] = None

    @property
    def key(self) -> str:
        return self._job.key

    def done(self) -> bool:
        return self._event.is_set()

    # ------------------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> PlanResponse:
        """Block until the job completes, the timeout or the deadline.

        ``timeout`` defaults to the request's ``deadline_s``; a request
        with no deadline is still bounded by the broker's ``max_wait_s``
        so a wedged resolver cannot pin caller threads forever.  An
        expired wait detaches the ticket and returns a ``timeout``
        response — the job itself keeps running for any other waiters and
        for the cache.
        """
        if timeout is None:
            timeout = self.request.deadline_s
        if timeout is None:
            timeout = self._broker.max_wait_s
        if self._event.wait(timeout):
            return self._response
        with self._broker._lock:
            # The result may have landed between the wait and the lock.
            if self._event.is_set():
                return self._response
            self._detach_locked()
            self._broker._stats.expired += 1
        get_metrics().inc("repro_broker_tickets_total", outcome="expired")
        return PlanResponse(
            status="timeout",
            request_key=self.key,
            wait_time_s=time.monotonic() - self.submitted_at,
            coalesced=self.coalesced,
            error=f"deadline expired after {timeout:.3f}s",
        )

    def cancel(self) -> bool:
        """Detach from the job; True if the ticket was still pending."""
        with self._broker._lock:
            if self._event.is_set():
                return False
            self._detach_locked()
            self._broker._stats.cancelled += 1
            get_metrics().inc("repro_broker_tickets_total", outcome="cancelled")
            self._response = PlanResponse(
                status="cancelled",
                request_key=self.key,
                wait_time_s=time.monotonic() - self.submitted_at,
                coalesced=self.coalesced,
            )
            self._event.set()
            return True

    def _detach_locked(self) -> None:
        job = self._job
        if self in job.tickets:
            job.tickets.remove(self)
        if not job.tickets and not job.started and not job.dropped:
            # Nobody wants this job and no worker has claimed it: drop it
            # so the queue never burns a worker on unclaimed work.
            job.dropped = True
            self._broker._inflight.pop(job.key, None)
            self._broker._stats.dropped_jobs += 1

    # ------------------------------------------------------------------
    def _resolve(self, response: PlanResponse) -> None:
        with self._broker._lock:
            # A cancel/expiry that won the race already settled this
            # ticket; the job's result must not overwrite that outcome.
            if self._event.is_set():
                return
            self._response = response.with_wait(
                time.monotonic() - self.submitted_at, coalesced=self.coalesced
            )
            self._event.set()
            get_metrics().inc("repro_broker_tickets_total", outcome="resolved")


class Broker:
    """Coalescing FIFO of planning jobs (see module docstring)."""

    def __init__(
        self,
        *,
        max_pending: Optional[int] = None,
        max_wait_s: float = DEFAULT_MAX_WAIT_S,
        key_fn: Optional[Callable[[PlanRequest], str]] = None,
    ) -> None:
        if max_pending is not None and max_pending < 1:
            raise BrokerError("max_pending must be positive")
        if max_wait_s <= 0:
            raise BrokerError("max_wait_s must be positive")
        self.max_pending = max_pending
        self.max_wait_s = max_wait_s
        # The coalescing identity.  The planning service injects a fault-
        # aware key function so requests issued after a fault registration
        # never join an in-flight job that targets the healthy fabric.
        self._key_fn = key_fn if key_fn is not None else (lambda r: r.request_key())
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._queue: Deque[Job] = deque()
        self._inflight: Dict[str, Job] = {}
        self._stats = BrokerStats()
        self._closed = False

    # ------------------------------------------------------------------
    # Caller side
    # ------------------------------------------------------------------
    def submit(self, request: PlanRequest) -> Ticket:
        """Enqueue (or join) the job for ``request`` and return a ticket."""
        request.validate()
        key = self._key_fn(request)
        with self._lock:
            if self._closed:
                raise BrokerError("broker is closed")
            self._stats.submitted += 1
            job = self._inflight.get(key)
            if job is not None and not job.dropped:
                ticket = Ticket(self, job, request, coalesced=True)
                job.tickets.append(ticket)
                self._stats.coalesced += 1
                get_metrics().inc("repro_broker_requests_total", outcome="coalesced")
                return ticket
            if self.max_pending is not None and len(self._queue) >= self.max_pending:
                raise BrokerError(
                    f"queue full ({self.max_pending} pending jobs); retry later"
                )
            job = Job(key, request)
            ticket = Ticket(self, job, request, coalesced=False)
            job.tickets.append(ticket)
            self._inflight[key] = job
            self._queue.append(job)
            metrics = get_metrics()
            metrics.inc("repro_broker_requests_total", outcome="enqueued")
            metrics.set_gauge("repro_broker_queue_depth", float(len(self._queue)))
            self._available.notify()
            return ticket

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Claim the next live job (skipping dropped ones); None on timeout
        or when the broker is closed and drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            while True:
                while self._queue:
                    job = self._queue.popleft()
                    get_metrics().set_gauge(
                        "repro_broker_queue_depth", float(len(self._queue))
                    )
                    if job.dropped:
                        continue
                    job.started = True
                    return job
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._available.wait(remaining)

    def complete(self, job: Job, response: PlanResponse) -> None:
        """Fan a finished job's response out to every remaining waiter."""
        with self._lock:
            self._inflight.pop(job.key, None)
            waiters = list(job.tickets)
            job.tickets.clear()
            if response.status == "ok":
                self._stats.completed += 1
                get_metrics().inc("repro_broker_jobs_total", outcome="completed")
            else:
                self._stats.failed += 1
                get_metrics().inc("repro_broker_jobs_total", outcome="failed")
        for ticket in waiters:
            ticket._resolve(response)

    def fail(self, job: Job, exc: BaseException) -> None:
        """Fail a job with a structured error response.

        Callers (the worker pool) route resolver exceptions here so every
        waiter gets a typed answer — the reason and the exception class —
        instead of a hung ticket.  Each call counts as a resolver crash
        in :class:`BrokerStats`.
        """
        with self._lock:
            self._stats.resolver_crashes += 1
        get_metrics().inc("repro_broker_resolver_crashes_total")
        self.complete(
            job,
            PlanResponse(
                status="error",
                request_key=job.key,
                error=f"resolver failed: {exc}",
                error_kind=type(exc).__name__,
            ),
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting submissions and wake idle workers."""
        with self._available:
            self._closed = True
            self._available.notify_all()

    def pending(self) -> int:
        with self._lock:
            return sum(1 for job in self._queue if not job.dropped)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            data = self._stats.as_dict()
            data["pending"] = sum(1 for job in self._queue if not job.dropped)
            data["inflight"] = len(self._inflight)
            return data

    def reset_stats(self) -> None:
        """Zero the counters and restart their ``since`` window (tests)."""
        with self._lock:
            self._stats.reset()

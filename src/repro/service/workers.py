"""Worker pool and the resolution chain behind every planning job.

Workers pull jobs off the :class:`~repro.service.broker.Broker` and answer
them through :class:`SynthesisResolver`, whose fallback ladder is fixed:

1. **registry / cache** — pinned requests consult the content-addressed
   :class:`~repro.engine.cache.AlgorithmCache`, routed requests the
   persisted routing table; a hit is answered without any solver work.
2. **synthesis** — pinned requests run one engine solve
   (:func:`repro.core.synthesizer.synthesize`); routed requests run a
   Pareto sweep through the engine's *auto*-selected dispatcher (cold
   frontier builds pick serial, incremental or speculative from the host's
   core count and the instance size, seeded with baseline upper bounds so
   dominated candidates are pruned before any solver work; see
   ``sweep_strategy`` to pin a specific dispatcher), then score the
   frontier with the alpha-beta simulator into a fresh routing table.
   The most patient waiter's remaining deadline is forwarded to the
   engine as the solve time limit.
3. **baseline** — when the solver comes back UNKNOWN (deadline / resource
   limits) the resolver degrades gracefully to a hand-written baseline
   (ring Allgather/Allreduce/Reducescatter, BFS-tree Broadcast/Reduce),
   clearly labelled ``source="baseline"``.  Serving a correct-but-
   suboptimal schedule beats serving an error.

:class:`PlanningService` bundles broker + pool + registry into the
one-object facade the HTTP server, the CLI, the quickstart example and the
benchmarks all share.  The resolver is injectable, which is also how the
contention tests count backend solves.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from ..telemetry import get_metrics
from .api import (
    DEFAULT_DEADLINE_S,
    FaultRequest,
    FaultResponse,
    PlanRequest,
    PlanResponse,
    ServiceError,
)
from .broker import Broker, Job, Ticket
from .faults import FaultBoard, apply_fault_request
from .registry import PlanRegistry, build_routing_table

#: Resolver signature: (request, remaining_s) -> PlanResponse.
Resolver = Callable[[PlanRequest, Optional[float]], PlanResponse]


class WorkerError(ServiceError):
    """Raised for invalid worker-pool configurations."""


# ----------------------------------------------------------------------
# Baseline fallback
# ----------------------------------------------------------------------
def baseline_algorithm(collective: str, topology, *, root: int = 0):
    """Best-effort hand-written algorithm for a collective, or None.

    Ring baselines need a Hamiltonian ring in the topology, tree baselines
    a connected one; anything else (Gather, Scatter, Alltoall, or an
    exotic topology) simply has no fallback.
    """
    from ..baselines import (
        ring_allgather,
        ring_allreduce,
        ring_reduce_scatter,
        single_ring,
        tree_broadcast,
        tree_reduce,
    )

    try:
        name = collective.lower()
        if name == "allgather":
            return ring_allgather(topology, single_ring(topology))
        if name == "allreduce":
            return ring_allreduce(topology, single_ring(topology))
        if name == "reducescatter":
            return ring_reduce_scatter(topology, single_ring(topology))
        if name == "broadcast":
            return tree_broadcast(topology, root=root)
        if name == "reduce":
            return tree_reduce(topology, root=root)
    except Exception:
        return None
    return None


def _baseline_response(
    request: PlanRequest, key: str, *, reason: str, started: float, topology=None
):
    from ..interchange.plan import plan_from_algorithm

    if topology is None:
        topology = request.resolve_topology()
    algorithm = baseline_algorithm(request.collective, topology, root=request.root)
    if algorithm is None:
        return PlanResponse(
            status="timeout",
            request_key=key,
            solve_time_s=time.monotonic() - started,
            error=f"{reason}; no baseline algorithm for {request.collective} "
            f"on {topology.name}",
        )
    plan = plan_from_algorithm(
        algorithm,
        provenance={"backend": "baseline", "fallback_reason": reason},
    )
    return PlanResponse(
        status="ok",
        request_key=key,
        plan=plan.to_json(),
        source="baseline",
        solve_time_s=time.monotonic() - started,
    )


# ----------------------------------------------------------------------
# The default resolver
# ----------------------------------------------------------------------
class SynthesisResolver:
    """The cache -> synthesis -> baseline ladder (see module docstring)."""

    def __init__(
        self,
        registry: PlanRegistry,
        *,
        max_steps_margin: int = 4,
        sweep_strategy: str = "auto",
        sweep_workers: Optional[int] = None,
        fault_board: Optional[FaultBoard] = None,
    ) -> None:
        # sweep_strategy="auto" lets the engine pick per build: serial on
        # single-core hosts, speculative for large instances, incremental
        # otherwise.  The pool strategies fork worker processes from a
        # worker thread for cold routed builds.  That is safe here because
        # pool children never touch the parent's broker/registry locks
        # (they re-import repro and solve standalone instances), but
        # deployments that embed the resolver next to fork-hostile
        # libraries can inject sweep_strategy="incremental" to stay
        # in-process.
        self.registry = registry
        self.max_steps_margin = max_steps_margin
        self.sweep_strategy = sweep_strategy
        self.sweep_workers = sweep_workers
        # Every resolution targets the fault board's view of the fabric:
        # with active faults the degraded topology flows through cache
        # lookups, routing keys, synthesis and baselines alike, so no
        # answer can schedule traffic over a link declared dead.
        self.fault_board = fault_board
        self.replans = 0          # resolutions that targeted a degraded topology
        self.solves = 0           # backend solves performed (not replayed)
        self.registry_hits = 0    # answers served with zero solver work
        # Which rung of the ladder answered: cache / registry / synthesized
        # / baseline / error.  Mirrors repro_resolver_rung_total{rung=...}.
        self.rungs: Dict[str, int] = {}
        self.since = time.time()
        self._lock = threading.Lock()
        # The broker coalesces on the full request key, which for routed
        # requests includes the size — but routed requests for *different*
        # sizes share one routing table, the expensive artifact.  These
        # per-table locks serialize concurrent builds of the same table so
        # a cold mixed-size burst runs one frontier sweep, not N.
        self._table_locks: Dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------
    def __call__(
        self, request: PlanRequest, remaining_s: Optional[float] = None
    ) -> PlanResponse:
        topology = self._effective_topology(request)
        if request.mode == "pinned":
            response = self._resolve_pinned(request, remaining_s, topology)
        else:
            response = self._resolve_routed(request, remaining_s, topology)
        self._record(request, response, topology)
        return response

    def _record(self, request: PlanRequest, response: PlanResponse, topology) -> None:
        """One archive record + latency observation per resolution.

        The ``rung`` is the resolver-ladder rung that produced the answer
        (``cache`` / ``registry`` / ``synthesized`` / ``baseline``) or the
        failure status; the latency histogram behind ``/v1/stats``'s
        p50/p95/p99 is labelled the same way.
        """
        from ..telemetry import record_run

        rung = response.source if response.ok else response.status
        get_metrics().observe(
            "repro_resolver_latency_seconds", response.solve_time_s, rung=rung
        )
        record_run(
            "service",
            name=f"{request.collective}/{topology.name}",
            fingerprint=response.request_key,
            features={"mode": request.mode, "nodes": topology.num_nodes},
            strategy=self.sweep_strategy,
            verdict=response.status,
            wall_s=response.solve_time_s,
            extra={"rung": rung},
        )

    def _rung(self, rung: str) -> None:
        """Record which ladder rung produced the answer."""
        with self._lock:
            self.rungs[rung] = self.rungs.get(rung, 0) + 1
        get_metrics().inc("repro_resolver_rung_total", rung=rung)

    def _effective_topology(self, request: PlanRequest):
        """The topology this resolution must target (degraded under faults)."""
        base = request.resolve_topology()
        if self.fault_board is None:
            return base
        topology = self.fault_board.apply(base)
        if topology is not base:
            with self._lock:
                self.replans += 1
        return topology

    # ------------------------------------------------------------------
    def _resolve_pinned(
        self, request: PlanRequest, remaining_s: Optional[float], topology
    ) -> PlanResponse:
        from ..core import make_instance, synthesize
        from ..interchange.plan import plan_from_result

        key = request.request_key()
        started = time.monotonic()

        plan = self.registry.lookup_pinned(request, topology=topology)
        if plan is not None:
            with self._lock:
                self.registry_hits += 1
            self._rung("cache")
            return PlanResponse(
                status="ok",
                request_key=key,
                plan=plan.to_json(),
                source="cache",
                solve_time_s=time.monotonic() - started,
            )

        try:
            instance = make_instance(
                request.collective,
                topology,
                request.chunks,
                request.steps,
                request.rounds,
                root=request.root,
            )
        except Exception as exc:
            self._rung("error")
            return PlanResponse(
                status="error", request_key=key, error=str(exc),
                solve_time_s=time.monotonic() - started,
            )

        with self._lock:
            self.solves += 1
        result = synthesize(
            instance,
            encoding=request.encoding,
            prune=request.prune,
            time_limit=_clamp_limit(remaining_s),
            backend=request.backend,
            cache=self.registry.cache,
        )
        if result.is_sat:
            self._rung("cache" if result.cache_hit else "synthesized")
            return PlanResponse(
                status="ok",
                request_key=key,
                plan=plan_from_result(result).to_json(),
                source="cache" if result.cache_hit else "synthesized",
                solve_time_s=time.monotonic() - started,
            )
        if result.is_unsat:
            self._rung("error")
            return PlanResponse(
                status="error",
                request_key=key,
                error=f"{request.describe()} is unsatisfiable",
                solve_time_s=time.monotonic() - started,
            )
        # UNKNOWN: the solver hit the deadline; degrade to a baseline.
        self._rung("baseline")
        return _baseline_response(
            request, key, reason="solver deadline exceeded", started=started,
            topology=topology,
        )

    # ------------------------------------------------------------------
    def _resolve_routed(
        self, request: PlanRequest, remaining_s: Optional[float], topology
    ) -> PlanResponse:
        key = request.request_key()
        started = time.monotonic()

        routed = self.registry.route(request, topology=topology)
        if routed is not None:
            plan, entry, table = routed
            with self._lock:
                self.registry_hits += 1
            self._rung("registry")
            return PlanResponse(
                status="ok",
                request_key=key,
                plan=plan.to_json(),
                source="registry",
                solve_time_s=time.monotonic() - started,
                route=_route_payload(entry, table),
            )

        # Miss: synthesize the frontier (incremental dispatcher), score it
        # with the simulator, persist the table, then route.  Builds of the
        # same table (routed requests differing only in size) serialize on
        # a per-table lock; whoever waited re-checks the registry first.
        with self._build_lock(request, topology):
            routed = self.registry.route(request, topology=topology)
            if routed is not None:
                plan, entry, table = routed
                with self._lock:
                    self.registry_hits += 1
                self._rung("registry")
                return PlanResponse(
                    status="ok",
                    request_key=key,
                    plan=plan.to_json(),
                    source="registry",
                    solve_time_s=time.monotonic() - started,
                    route=_route_payload(entry, table),
                )
            try:
                table = self._build_table(request, remaining_s, topology)
            except Exception as exc:
                self._rung("error")
                return PlanResponse(
                    status="error", request_key=key, error=str(exc),
                    solve_time_s=time.monotonic() - started,
                )
            if table is None:
                self._rung("baseline")
                return _baseline_response(
                    request, key,
                    reason="frontier synthesis exceeded the deadline",
                    started=started,
                    topology=topology,
                )
            self.registry.install_table(request, table, topology=topology)
        entry = table.route(float(request.size_bytes))
        if entry is None:  # pragma: no cover - tables tile [0, inf)
            self._rung("baseline")
            return _baseline_response(
                request, key, reason="no routing entry", started=started,
                topology=topology,
            )
        self._rung("synthesized")
        return PlanResponse(
            status="ok",
            request_key=key,
            plan=table.plan_for(entry, verify=False).to_json(),
            source="synthesized",
            solve_time_s=time.monotonic() - started,
            route=_route_payload(entry, table),
        )

    def _build_lock(self, request: PlanRequest, topology) -> threading.Lock:
        from .registry import routing_key

        key = routing_key(
            request.collective,
            topology,
            root=request.root,
            synchrony=request.synchrony,
            encoding=request.encoding,
            prune=request.prune,
        )
        with self._lock:
            return self._table_locks.setdefault(key, threading.Lock())

    def _build_table(self, request: PlanRequest, remaining_s: Optional[float], topology):
        from ..core import pareto_synthesize

        with self._lock:
            self.solves += 1
        frontier = pareto_synthesize(
            request.collective,
            topology,
            k=request.synchrony,
            root=request.root,
            time_limit_per_instance=_clamp_limit(remaining_s),
            strategy=self.sweep_strategy,
            max_workers=self.sweep_workers,
            backend=request.backend,
            cache=self.registry.cache,
            # Cold routed builds are the service's most expensive path, so
            # baseline bound-seeding is requested explicitly (not just by
            # default): dominated candidates never reach the solver pool.
            bounds="baseline",
        )
        algorithms = frontier.algorithms()
        if not algorithms:
            return None
        return build_routing_table(
            request.collective,
            topology,
            algorithms,
            root=request.root,
            synchrony=request.synchrony,
        )

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "solves": self.solves,
                "registry_hits": self.registry_hits,
                "replans": self.replans,
                "rungs": dict(self.rungs),
                "since": self.since,
            }

    def reset(self) -> None:
        """Zero the counters and restart their ``since`` window (tests)."""
        with self._lock:
            self.replans = 0
            self.solves = 0
            self.registry_hits = 0
            self.rungs.clear()
            self.since = time.time()


def _clamp_limit(remaining_s: Optional[float]) -> Optional[float]:
    """Deadline -> engine time limit (never zero/negative: use a floor)."""
    if remaining_s is None:
        return None
    return max(0.05, remaining_s)


def _route_payload(entry, table) -> Dict[str, object]:
    return {
        "min_bytes": entry.min_bytes,
        "max_bytes": entry.max_bytes,
        "plan": entry.plan_name,
        "signature": list(entry.signature),
        "protocol": table.protocol,
        "table_built_at": table.built_at,
    }


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class WorkerPool:
    """Threads draining the broker through a resolver.

    Planning work is dominated by the pure-Python SAT search, which
    releases the GIL poorly — but the pool still wins: cache and registry
    hits are I/O-bound, coalesced bursts collapse to one solve, and the
    pool shape (``num_workers``) is the knob every future scaling PR
    (multi-process workers, remote backends) will re-implement behind the
    same broker contract.
    """

    def __init__(
        self,
        broker: Broker,
        resolver: Resolver,
        *,
        num_workers: int = 2,
        poll_s: float = 0.1,
    ) -> None:
        if num_workers < 1:
            raise WorkerError("num_workers must be at least 1")
        self.broker = broker
        self.resolver = resolver
        self.num_workers = num_workers
        self.poll_s = poll_s
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            raise WorkerError("pool already started")
        self._stop.clear()
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._run, name=f"planner-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, *, timeout: Optional[float] = 5.0) -> None:
        self._stop.set()
        self.broker.close()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    def _run(self) -> None:
        while not self._stop.is_set():
            job = self.broker.next_job(timeout=self.poll_s)
            if job is None:
                continue
            self._serve(job)
        # Drain: answer anything still queued so no ticket hangs forever.
        while True:
            job = self.broker.next_job(timeout=0)
            if job is None:
                break
            self._serve(job)

    def _serve(self, job: Job) -> None:
        try:
            response = self.resolver(job.request, job.remaining_s())
        except (KeyboardInterrupt, SystemExit):
            # Shutdown signals must propagate — but only after the job's
            # waiters get a structured answer instead of a hung ticket.
            self.broker.fail(job, ServiceError("worker interrupted during shutdown"))
            raise
        except Exception as exc:  # a resolver bug must not kill the pool
            self.broker.fail(job, exc)
        else:
            self.broker.complete(job, response)


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
class PlanningService:
    """Broker + worker pool + registry in one start/stoppable object."""

    def __init__(
        self,
        registry: Optional[PlanRegistry] = None,
        *,
        num_workers: int = 2,
        resolver: Optional[Resolver] = None,
        max_pending: Optional[int] = None,
        fault_board: Optional[FaultBoard] = None,
    ) -> None:
        self.registry = registry if registry is not None else PlanRegistry()
        self.fault_board = fault_board if fault_board is not None else FaultBoard()
        self.resolver = (
            resolver
            if resolver is not None
            else SynthesisResolver(self.registry, fault_board=self.fault_board)
        )
        # Coalescing keys are salted with the active fault fingerprint so a
        # request submitted after a fault registration never joins an
        # in-flight job still planning against the healthy fabric.
        self.broker = Broker(
            max_pending=max_pending, key_fn=self.fault_board.salted_key
        )
        self.pool = WorkerPool(self.broker, self.resolver, num_workers=num_workers)
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "PlanningService":
        if not self._started:
            self.pool.start()
            self._started = True
        return self

    def stop(self) -> None:
        if self._started:
            self.pool.stop()
            self._started = False

    def __enter__(self) -> "PlanningService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def submit(self, request: PlanRequest) -> Ticket:
        if not self._started:
            raise WorkerError("service is not started (use `with PlanningService(...)`) ")
        return self.broker.submit(request)

    def request(
        self, request: PlanRequest, *, timeout: Optional[float] = None
    ) -> PlanResponse:
        """Submit and wait — the one-call path most users want.

        ``timeout`` defaults to the request's deadline, falling back to
        :data:`~repro.service.api.DEFAULT_DEADLINE_S` so a forgotten
        deadline can never hang a caller forever.
        """
        ticket = self.submit(request)
        if timeout is None:
            timeout = request.deadline_s if request.deadline_s is not None else DEFAULT_DEADLINE_S
        return ticket.wait(timeout)

    def fault(self, request: FaultRequest) -> FaultResponse:
        """Register, clear or inspect faults; invalidates affected plans.

        Mutations invalidate the registry's routing tables and cache
        entries for the affected topology, so the next plan request
        replans against the new fabric instead of serving a stale answer.
        """
        return apply_fault_request(self.fault_board, request, registry=self.registry)

    def stats(self) -> Dict[str, object]:
        from ..engine.backends import get_quarantine
        from ..telemetry import host_context

        data: Dict[str, object] = {"broker": self.broker.stats()}
        data["registry"] = self.registry.stats()
        if hasattr(self.resolver, "stats"):
            data["resolver"] = self.resolver.stats()
        data["workers"] = self.pool.num_workers
        data["faults"] = self.fault_board.snapshot()
        data["quarantine"] = get_quarantine().stats()
        data["engine"] = self._engine_stats()
        # Where these numbers were measured: archived alongside every run so
        # the regression sentinel never compares timings across hosts.
        data["host"] = host_context()
        return data

    def _engine_stats(self) -> Dict[str, object]:
        """Engine-side counters for ``/v1/stats``: bounds work + cache rate."""
        metrics = get_metrics()
        cache_stats = self.registry.cache.stats()
        lookups = cache_stats.get("hits", 0) + cache_stats.get("misses", 0)
        return {
            "bounds": {
                "probed": int(
                    metrics.total("repro_bounds_candidates_total", action="probed")
                ),
                "pruned": int(
                    metrics.total("repro_bounds_candidates_total", action="pruned")
                ),
                "cut": int(
                    metrics.total("repro_bounds_candidates_total", action="cut")
                ),
            },
            "cache": dict(
                cache_stats,
                hit_rate=(cache_stats.get("hits", 0) / lookups) if lookups else 0.0,
            ),
            "latency": {
                "resolver_seconds": metrics.quantiles(
                    "repro_resolver_latency_seconds"
                ),
                "solve_seconds": metrics.quantiles("repro_solve_seconds"),
            },
        }

    def reset_stats(self) -> None:
        """Zero broker + resolver counters; explicit only, never on start.

        Counters deliberately survive :meth:`stop`/:meth:`start` cycles
        (scrapers must not see a restart as a counter reset); tests call
        this to get a clean window, and the snapshots' ``since`` fields
        date whatever window is being reported.
        """
        self.broker.reset_stats()
        if hasattr(self.resolver, "reset"):
            self.resolver.reset()

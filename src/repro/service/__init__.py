"""The planning service: concurrent synthesis brokering and plan serving.

The paper's pipeline ends when an algorithm is synthesized; production
serving starts there.  This package turns the synthesis engine into an
online service: typed :class:`PlanRequest`/:class:`PlanResponse` messages
(:mod:`~repro.service.api`), a thread-safe broker that *coalesces*
identical in-flight requests so N concurrent callers trigger exactly one
synthesis (:mod:`~repro.service.broker`), a worker pool whose resolution
ladder degrades from cache hit through incremental synthesis to a baseline
algorithm on deadline expiry (:mod:`~repro.service.workers`), a registry
layering buffer-size routing tables over the algorithm cache
(:mod:`~repro.service.registry`), and a stdlib HTTP endpoint plus client
(:mod:`~repro.service.server`) behind ``repro serve`` / ``repro request``.
"""

from .api import (
    API_VERSION,
    DEFAULT_DEADLINE_S,
    FAULT_ACTIONS,
    FaultRequest,
    FaultResponse,
    PlanRequest,
    PlanResponse,
    ServiceError,
)
from .broker import Broker, BrokerError, BrokerStats, Job, Ticket
from .faults import FaultBoard, apply_fault_request
from .registry import (
    DEFAULT_ROUTE_SIZES,
    PlanRegistry,
    RegistryError,
    RouteEntry,
    RoutingTable,
    build_routing_table,
    default_registry,
    routing_key,
)
from .server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PlanningHTTPServer,
    ServerThread,
    check_health,
    fetch_metrics,
    fetch_stats,
    make_server,
    request_fault,
    request_plan,
)
from .workers import (
    PlanningService,
    SynthesisResolver,
    WorkerError,
    WorkerPool,
    baseline_algorithm,
)

__all__ = [
    "API_VERSION",
    "Broker",
    "BrokerError",
    "BrokerStats",
    "DEFAULT_DEADLINE_S",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_ROUTE_SIZES",
    "FAULT_ACTIONS",
    "FaultBoard",
    "FaultRequest",
    "FaultResponse",
    "Job",
    "PlanRegistry",
    "PlanRequest",
    "PlanResponse",
    "PlanningHTTPServer",
    "PlanningService",
    "RegistryError",
    "RouteEntry",
    "RoutingTable",
    "ServerThread",
    "ServiceError",
    "SynthesisResolver",
    "Ticket",
    "WorkerError",
    "WorkerPool",
    "apply_fault_request",
    "baseline_algorithm",
    "build_routing_table",
    "check_health",
    "fetch_metrics",
    "fetch_stats",
    "default_registry",
    "make_server",
    "request_fault",
    "request_plan",
    "routing_key",
]

"""Plan registry: pinned-plan lookups plus per-(collective, topology)
buffer-size routing tables.

The registry is the serving-side face of the persistence layer.  It layers
two stores:

* **pinned plans** — delegated to the engine's content-addressed
  :class:`~repro.engine.cache.AlgorithmCache` (one JSON file per solved
  candidate, safe under concurrent writers);
* **routing tables** — one JSON document per ``(collective, topology
  structure, root, synchrony)`` tuple mapping *buffer-size ranges* to the
  frontier algorithm the alpha-beta simulator predicts is fastest in that
  range.  This turns the evaluation harness's offline "which algorithm
  wins at which size" analysis (paper Figures 4-6) into an online routing
  decision answered from a dict lookup.

Tables embed their frontier algorithms as
:class:`~repro.interchange.plan.AlgorithmPlan` bundles, so a routed answer
is served without touching the algorithm cache, and every plan crossing
back in from disk is re-verified against the collective spec (the
interchange trust boundary applies to the registry's own files too —
a hand-edited table cannot inject an invalid schedule).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.algorithm import Algorithm
from ..engine.cache import (
    AlgorithmCache,
    default_cache,
    topology_cost_payload,
    topology_fingerprint_payload,
)
from ..interchange.plan import AlgorithmPlan, plan_from_algorithm
from ..topology import Topology
from .api import PlanRequest, ServiceError

ROUTES_FORMAT = "repro-sccl/routes"
ROUTES_VERSION = 1

#: Default probe grid for routing tables: 1 KiB .. 256 MiB in x4 steps.
DEFAULT_ROUTE_SIZES: Tuple[int, ...] = tuple(1024 * 4 ** i for i in range(10))

#: Protocol whose cost model scores routing candidates.
DEFAULT_ROUTE_PROTOCOL = "single_kernel_push"


class RegistryError(ServiceError):
    """Raised for malformed routing tables or registry misuse."""


# ----------------------------------------------------------------------
# Routing tables
# ----------------------------------------------------------------------
@dataclass
class RouteEntry:
    """One contiguous buffer-size range and its winning algorithm."""

    min_bytes: float
    max_bytes: Optional[float]      # None = open-ended (largest range)
    plan_name: str                  # key into RoutingTable.plans
    signature: Tuple[int, int, int]  # (C, S, R) of the winner

    def covers(self, size_bytes: float) -> bool:
        upper_ok = self.max_bytes is None or size_bytes < self.max_bytes
        return size_bytes >= self.min_bytes and upper_ok

    def to_json(self) -> dict:
        return {
            "min_bytes": self.min_bytes,
            "max_bytes": self.max_bytes,
            "plan": self.plan_name,
            "signature": list(self.signature),
        }

    @classmethod
    def from_json(cls, data: dict) -> "RouteEntry":
        return cls(
            min_bytes=float(data["min_bytes"]),
            max_bytes=None if data.get("max_bytes") is None else float(data["max_bytes"]),
            plan_name=str(data["plan"]),
            signature=tuple(int(v) for v in data["signature"]),
        )


@dataclass
class RoutingTable:
    """Simulator-scored frontier of one (collective, topology) pair."""

    collective: str
    topology_name: str
    fingerprint: str                 # structural topology fingerprint
    root: int
    synchrony: int
    protocol: str
    probe_sizes: List[int] = field(default_factory=list)
    probe_times: Dict[str, List[float]] = field(default_factory=dict)
    entries: List[RouteEntry] = field(default_factory=list)
    plans: Dict[str, dict] = field(default_factory=dict)   # name -> plan JSON
    built_at: float = 0.0
    build_time_s: float = 0.0

    def route(self, size_bytes: float) -> Optional[RouteEntry]:
        """The entry covering ``size_bytes`` (tables cover [0, inf))."""
        for entry in self.entries:
            if entry.covers(size_bytes):
                return entry
        return None

    def plan_for(self, entry: RouteEntry, *, verify: bool = False) -> AlgorithmPlan:
        payload = self.plans.get(entry.plan_name)
        if payload is None:
            raise RegistryError(
                f"routing table references unknown plan {entry.plan_name!r}"
            )
        return AlgorithmPlan.from_json(payload, verify=verify)

    def to_json(self) -> dict:
        return {
            "format": ROUTES_FORMAT,
            "version": ROUTES_VERSION,
            "collective": self.collective,
            "topology": self.topology_name,
            "topology_fingerprint": self.fingerprint,
            "root": self.root,
            "synchrony": self.synchrony,
            "protocol": self.protocol,
            "probe_sizes": list(self.probe_sizes),
            "probe_times": {k: list(v) for k, v in self.probe_times.items()},
            "entries": [entry.to_json() for entry in self.entries],
            "plans": dict(self.plans),
            "built_at": self.built_at,
            "build_time_s": self.build_time_s,
        }

    @classmethod
    def from_json(cls, data: dict, *, verify: bool = True) -> "RoutingTable":
        if data.get("format") != ROUTES_FORMAT:
            raise RegistryError(
                f"not a {ROUTES_FORMAT} document (format={data.get('format')!r})"
            )
        if data.get("version") != ROUTES_VERSION:
            raise RegistryError(f"unsupported routes version {data.get('version')!r}")
        try:
            table = cls(
                collective=str(data["collective"]),
                topology_name=str(data.get("topology", "?")),
                fingerprint=str(data["topology_fingerprint"]),
                root=int(data.get("root", 0)),
                synchrony=int(data.get("synchrony", 0)),
                protocol=str(data.get("protocol", DEFAULT_ROUTE_PROTOCOL)),
                probe_sizes=[int(v) for v in data.get("probe_sizes", [])],
                probe_times={
                    str(k): [float(x) for x in v]
                    for k, v in data.get("probe_times", {}).items()
                },
                entries=[RouteEntry.from_json(e) for e in data.get("entries", [])],
                plans=dict(data.get("plans", {})),
                built_at=float(data.get("built_at", 0.0)),
                build_time_s=float(data.get("build_time_s", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed routing table: {exc}") from exc
        if verify:
            table.verify()
        return table

    def verify(self) -> None:
        """Trust boundary for tables loaded from disk.

        Every referenced plan must exist, decode, re-verify against its
        collective spec, and carry the table's topology fingerprint; the
        entries must tile [0, inf) without gaps or overlaps.
        """
        for entry in self.entries:
            plan = self.plan_for(entry, verify=True)
            if plan.fingerprint != self.fingerprint:
                raise RegistryError(
                    f"plan {entry.plan_name!r} was built for a different topology "
                    f"than its routing table"
                )
        expected_min = 0.0
        for index, entry in enumerate(self.entries):
            if entry.min_bytes != expected_min:
                raise RegistryError(
                    f"routing entries do not tile sizes: entry {index} starts at "
                    f"{entry.min_bytes}, expected {expected_min}"
                )
            if entry.max_bytes is None:
                if index != len(self.entries) - 1:
                    raise RegistryError("only the last routing entry may be open-ended")
            else:
                if entry.max_bytes <= entry.min_bytes:
                    raise RegistryError(f"empty routing range at entry {index}")
                expected_min = entry.max_bytes
        if self.entries and self.entries[-1].max_bytes is not None:
            raise RegistryError("last routing entry must be open-ended")


def build_routing_table(
    collective: str,
    topology: Topology,
    algorithms: Sequence[Algorithm],
    *,
    root: int = 0,
    synchrony: int = 0,
    sizes: Sequence[int] = DEFAULT_ROUTE_SIZES,
    protocol: str = DEFAULT_ROUTE_PROTOCOL,
) -> RoutingTable:
    """Score candidate algorithms with the simulator and derive size ranges.

    Each algorithm is lowered once and simulated at every probe size; the
    per-size winner is the minimum simulated wall-clock time.  Runs of
    consecutive probe sizes with the same winner merge into one
    :class:`RouteEntry`; the boundary between two ranges is the geometric
    midpoint of the adjacent probe sizes (sizes are sampled on a geometric
    grid, so that is the unbiased split).
    """
    from ..interchange.plan import topology_fingerprint
    from ..runtime import Simulator, lower

    if not algorithms:
        raise RegistryError("cannot build a routing table from zero algorithms")
    sizes = sorted(set(int(s) for s in sizes))
    if not sizes or sizes[0] <= 0:
        raise RegistryError("probe sizes must be positive")

    started = time.monotonic()
    simulator = Simulator(topology)
    programs = [(algorithm, lower(algorithm, protocol=protocol)) for algorithm in algorithms]

    names: List[str] = []
    times: Dict[str, List[float]] = {}
    plans: Dict[str, dict] = {}
    for algorithm, _ in programs:
        if algorithm.name in plans:
            raise RegistryError(f"duplicate algorithm name {algorithm.name!r}")
        names.append(algorithm.name)
        times[algorithm.name] = []
        plans[algorithm.name] = plan_from_algorithm(algorithm).to_json()

    winners: List[str] = []
    for size in sizes:
        best_name, best_time = None, math.inf
        for algorithm, program in programs:
            elapsed = simulator.simulate(program, size).total_time_s
            times[algorithm.name].append(elapsed)
            if elapsed < best_time:
                best_name, best_time = algorithm.name, elapsed
        winners.append(best_name)

    by_name = {algorithm.name: algorithm for algorithm, _ in programs}
    entries: List[RouteEntry] = []
    lower_bound = 0.0
    for index, winner in enumerate(winners):
        last = index == len(winners) - 1
        if not last and winners[index + 1] == winner:
            continue
        upper = None if last else math.sqrt(sizes[index] * sizes[index + 1])
        entries.append(
            RouteEntry(
                min_bytes=lower_bound,
                max_bytes=upper,
                plan_name=winner,
                signature=by_name[winner].signature(),
            )
        )
        lower_bound = upper

    return RoutingTable(
        collective=collective,
        topology_name=topology.name,
        fingerprint=topology_fingerprint(topology),
        root=root,
        synchrony=synchrony,
        protocol=protocol,
        probe_sizes=list(sizes),
        probe_times=times,
        entries=entries,
        plans=plans,
        built_at=time.time(),
        build_time_s=time.monotonic() - started,
    )


def routing_key(
    collective: str,
    topology: Topology,
    *,
    root: int = 0,
    synchrony: int = 0,
    encoding: str = "sccl",
    prune: bool = True,
) -> str:
    """Content hash identifying one routing table (size-independent).

    The key covers both the *structural* topology payload (which links
    exist — decides satisfiability) and the *cost* payload (alpha/beta
    and per-link overrides — decides which frontier algorithm wins each
    size range).  Changing cost parameters therefore addresses a fresh
    table instead of serving routes scored under the old cost model.
    """
    payload = {
        "version": ROUTES_VERSION,
        "collective": collective,
        "topology": topology_fingerprint_payload(topology),
        "topology_cost": topology_cost_payload(topology),
        "root": root,
        "synchrony": synchrony,
        "encoding": encoding,
        "prune": prune,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class PlanRegistry:
    """Pinned-plan cache plus persistent, memoized routing tables.

    Loaded tables are memoized in memory keyed by file mtime, so steady
    state routed lookups cost two dict probes and no disk I/O or
    re-verification — the microseconds-path the service exists for.
    """

    def __init__(
        self,
        cache: Optional[AlgorithmCache] = None,
        routes_dir=None,
    ) -> None:
        self.cache = cache if cache is not None else default_cache()
        if routes_dir is None:
            routes_dir = self.cache.root.parent / "routes"
        self.routes_dir = Path(routes_dir)
        self._lock = threading.Lock()
        self._tables: Dict[str, Tuple[float, RoutingTable]] = {}
        self.route_hits = 0
        self.route_misses = 0

    # ------------------------------------------------------------------
    # Pinned plans (delegated to the algorithm cache)
    # ------------------------------------------------------------------
    def lookup_pinned(
        self, request: PlanRequest, *, topology: Optional[Topology] = None
    ) -> Optional[AlgorithmPlan]:
        """Cached plan for a pinned request, or None.

        ``topology`` overrides the request's spec-derived topology — the
        resolver passes the *degraded* topology when faults are active, so
        lookups address plans built for the fabric as it currently is.
        """
        if topology is None:
            topology = request.resolve_topology()
        algorithm = self.cache.load_algorithm(
            request.collective,
            topology,
            request.chunks,
            request.steps,
            request.rounds,
            root=request.root,
            encoding=request.encoding,
            prune=request.prune,
        )
        if algorithm is None:
            return None
        return plan_from_algorithm(
            algorithm, provenance={"backend": "cache", "cache_hit": True}
        )

    # ------------------------------------------------------------------
    # Routing tables
    # ------------------------------------------------------------------
    def _table_path(self, key: str) -> Path:
        return self.routes_dir / f"{key}.json"

    def load_table(self, key: str) -> Optional[RoutingTable]:
        """Load (and memoize) a routing table; None when absent/invalid."""
        path = self._table_path(key)
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return None
        with self._lock:
            cached = self._tables.get(key)
            if cached is not None and cached[0] == mtime:
                return cached[1]
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            table = RoutingTable.from_json(data, verify=True)
        except Exception:
            # An unreadable or tampered table is a miss, never an answer.
            return None
        with self._lock:
            self._tables[key] = (mtime, table)
        return table

    def save_table(self, key: str, table: RoutingTable) -> Path:
        """Atomically persist a table (concurrent writers: last one wins)."""
        path = self._table_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(table.to_json(), handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with self._lock:
            try:
                self._tables[key] = (path.stat().st_mtime, table)
            except OSError:
                self._tables.pop(key, None)
        return path

    def table_for(
        self, request: PlanRequest, *, topology: Optional[Topology] = None
    ) -> Optional[RoutingTable]:
        if topology is None:
            topology = request.resolve_topology()
        key = routing_key(
            request.collective,
            topology,
            root=request.root,
            synchrony=request.synchrony,
            encoding=request.encoding,
            prune=request.prune,
        )
        return self.load_table(key)

    def route(
        self, request: PlanRequest, *, topology: Optional[Topology] = None
    ) -> Optional[Tuple[AlgorithmPlan, RouteEntry, RoutingTable]]:
        """Answer a routed request from a persisted table, or None."""
        table = self.table_for(request, topology=topology)
        if table is None:
            with self._lock:
                self.route_misses += 1
            return None
        entry = table.route(float(request.size_bytes))
        if entry is None:
            with self._lock:
                self.route_misses += 1
            return None
        with self._lock:
            self.route_hits += 1
        # Plans inside a memoized table were verified when the table was
        # loaded; skip per-request re-verification on the hot path.
        return table.plan_for(entry, verify=False), entry, table

    def install_table(
        self,
        request: PlanRequest,
        table: RoutingTable,
        *,
        topology: Optional[Topology] = None,
    ) -> str:
        if topology is None:
            topology = request.resolve_topology()
        key = routing_key(
            request.collective,
            topology,
            root=request.root,
            synchrony=request.synchrony,
            encoding=request.encoding,
            prune=request.prune,
        )
        self.save_table(key, table)
        return key

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, topology: Topology) -> Dict[str, int]:
        """Drop every routing table and cache entry built for ``topology``.

        Called when the topology's fault state changes: any table or
        cached algorithm addressed under the old fabric may route chunks
        over links that no longer exist (or, on fault clearance, may
        under-use links that are healthy again).  Tables are matched by
        their embedded structural fingerprint; cache entries — whose keys
        are opaque content hashes — by their descriptive instance
        metadata (topology name and node count).
        """
        from ..interchange.plan import topology_fingerprint

        target = topology_fingerprint(topology)
        tables_dropped = 0
        for path in self.tables():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if data.get("topology_fingerprint") != target:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            with self._lock:
                self._tables.pop(path.stem, None)
            tables_dropped += 1

        entries_dropped = 0
        for _, entry in self.cache.entries():
            meta = entry.instance or {}
            if (
                meta.get("topology") == topology.name
                and meta.get("num_nodes") == topology.num_nodes
            ):
                self.cache.discard(entry.key)
                entries_dropped += 1
        return {"tables": tables_dropped, "cache_entries": entries_dropped}

    # ------------------------------------------------------------------
    def tables(self) -> List[Path]:
        if not self.routes_dir.exists():
            return []
        return sorted(self.routes_dir.glob("*.json"))

    def stats(self) -> Dict[str, object]:
        with self._lock:
            hits, misses = self.route_hits, self.route_misses
        return {
            "cache": self.cache.stats(),
            "route_hits": hits,
            "route_misses": misses,
            "tables": len(self.tables()),
        }


def default_registry() -> PlanRegistry:
    """Registry over the process-default cache (routes live beside it)."""
    return PlanRegistry(cache=default_cache())

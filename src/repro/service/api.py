"""Typed request/response API of the planning service.

A :class:`PlanRequest` asks the service for a deployable collective
algorithm in one of two modes:

* **pinned** — the caller names the full candidate ``(C, S, R)``; the
  service answers with exactly that algorithm (cache hit, fresh synthesis,
  or a baseline fallback when the deadline expires).
* **routed** — the caller names only a per-node buffer size; the service
  consults the :class:`~repro.service.registry.PlanRegistry` routing table
  for the ``(collective, topology)`` pair and answers with the
  simulator-fastest frontier algorithm for that size, building (and
  persisting) the table on first use.

Requests are *content addressed*: :meth:`PlanRequest.request_key` reuses the
engine cache's candidate fingerprint for pinned requests, so the broker's
coalescing, the algorithm cache and the registry all agree on what
"identical work" means.  Caller-local fields (the deadline) are explicitly
excluded from the key — two callers with different patience still share one
synthesis.

Both types have stable JSON wire forms (``to_json`` / ``from_json``); the
HTTP server and the ``repro request`` client speak exactly these.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..cli.topologies import TopologySpecError, parse_topology
from ..interchange.plan import AlgorithmPlan
from ..topology import Topology

API_VERSION = 1

#: Default per-request deadline (seconds) when the caller supplies none.
DEFAULT_DEADLINE_S = 300.0


class ServiceError(Exception):
    """Raised for malformed service requests or responses."""


@dataclass(frozen=True)
class PlanRequest:
    """One planning question: "give me an algorithm for this job".

    ``topology`` is a CLI topology spec string (``ring:4``, ``dgx1``, ...)
    — the wire form stays a one-liner and the server re-derives the
    structural fingerprint itself rather than trusting the caller's.
    """

    collective: str
    topology: str
    chunks: Optional[int] = None
    steps: Optional[int] = None
    rounds: Optional[int] = None
    root: int = 0
    size_bytes: Optional[int] = None
    synchrony: int = 2            # k budget for routed-mode frontier sweeps
    deadline_s: Optional[float] = None
    backend: Optional[str] = None
    encoding: str = "sccl"
    prune: bool = True

    # ------------------------------------------------------------------
    # Validation / mode
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """``"pinned"`` or ``"routed"`` (raises for ambiguous requests)."""
        pinned = [self.chunks, self.steps, self.rounds]
        if all(v is not None for v in pinned):
            return "pinned"
        if any(v is not None for v in pinned):
            raise ServiceError(
                "pinned requests need all of chunks, steps and rounds "
                f"(got C={self.chunks}, S={self.steps}, R={self.rounds})"
            )
        if self.size_bytes is not None:
            return "routed"
        raise ServiceError(
            "request must pin (chunks, steps, rounds) or supply size_bytes "
            "for routing"
        )

    def validate(self) -> "PlanRequest":
        """Check field ranges and the topology spec; returns self."""
        mode = self.mode  # raises on ambiguous shape
        if not self.collective:
            raise ServiceError("collective must be non-empty")
        if mode == "pinned" and min(self.chunks, self.steps, self.rounds) < 1:
            raise ServiceError("chunks, steps and rounds must be positive")
        if mode == "routed" and self.size_bytes <= 0:
            raise ServiceError("size_bytes must be positive")
        if self.synchrony < 0:
            raise ServiceError("synchrony must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServiceError("deadline_s must be positive")
        if self.encoding not in ("sccl", "naive"):
            raise ServiceError(f"unknown encoding {self.encoding!r}")
        self.resolve_topology()
        return self

    def resolve_topology(self) -> Topology:
        try:
            return parse_topology(self.topology)
        except TopologySpecError as exc:
            raise ServiceError(str(exc)) from exc

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def request_key(self) -> str:
        """Content hash identifying this request's *work*.

        Pinned requests reuse the engine cache fingerprint verbatim, so a
        request key doubles as the cache key of the answer.  Routed
        requests hash the structural topology payload plus the routing
        inputs.  The deadline and the backend are caller preferences, not
        work content, and are excluded.
        """
        from ..engine.cache import fingerprint, topology_fingerprint_payload

        topology = self.resolve_topology()
        if self.mode == "pinned":
            return fingerprint(
                self.collective,
                topology,
                self.chunks,
                self.steps,
                self.rounds,
                root=self.root,
                encoding=self.encoding,
                prune=self.prune,
            )
        payload = {
            "version": API_VERSION,
            "mode": "routed",
            "collective": self.collective,
            "topology": topology_fingerprint_payload(topology),
            "root": self.root,
            "size_bytes": self.size_bytes,
            "synchrony": self.synchrony,
            "encoding": self.encoding,
            "prune": self.prune,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        data = {
            "version": API_VERSION,
            "collective": self.collective,
            "topology": self.topology,
            "root": self.root,
            "synchrony": self.synchrony,
            "encoding": self.encoding,
            "prune": self.prune,
        }
        for name in ("chunks", "steps", "rounds", "size_bytes", "deadline_s", "backend"):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        return data

    @classmethod
    def from_json(cls, data: dict) -> "PlanRequest":
        if not isinstance(data, dict):
            raise ServiceError("request payload must be a JSON object")
        version = data.get("version", API_VERSION)
        if version != API_VERSION:
            raise ServiceError(f"unsupported request version {version!r}")
        try:
            request = cls(
                collective=str(data["collective"]),
                topology=str(data["topology"]),
                chunks=_opt_int(data, "chunks"),
                steps=_opt_int(data, "steps"),
                rounds=_opt_int(data, "rounds"),
                root=int(data.get("root", 0)),
                size_bytes=_opt_int(data, "size_bytes"),
                synchrony=int(data.get("synchrony", 2)),
                deadline_s=_opt_float(data, "deadline_s"),
                backend=data.get("backend"),
                encoding=str(data.get("encoding", "sccl")),
                prune=bool(data.get("prune", True)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed request: {exc}") from exc
        return request.validate()

    def describe(self) -> str:
        if self.mode == "pinned":
            shape = f"C={self.chunks} S={self.steps} R={self.rounds}"
        else:
            shape = f"size={self.size_bytes}B k={self.synchrony}"
        return f"{self.collective} on {self.topology} [{shape}]"


def _opt_int(data: dict, key: str) -> Optional[int]:
    value = data.get(key)
    return None if value is None else int(value)


def _opt_float(data: dict, key: str) -> Optional[float]:
    value = data.get(key)
    return None if value is None else float(value)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
#: How the plan in a response was obtained.
SOURCES = ("registry", "cache", "synthesized", "baseline")

#: Terminal request outcomes.
STATUSES = ("ok", "timeout", "cancelled", "error")


@dataclass
class PlanResponse:
    """The service's answer: a plan bundle plus provenance and timing."""

    status: str                       # one of STATUSES
    request_key: str
    plan: Optional[dict] = None       # AlgorithmPlan.to_json() when status == "ok"
    source: str = ""                  # one of SOURCES when status == "ok"
    solve_time_s: float = 0.0         # worker-side time spent answering
    wait_time_s: float = 0.0          # caller-side queueing + coalescing wait
    coalesced: bool = False           # True when this caller shared another's work
    route: Optional[Dict[str, object]] = None  # routed mode: chosen table entry
    error: Optional[str] = None
    error_kind: Optional[str] = None  # exception class name when status == "error"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def plan_object(self, *, verify: bool = True) -> AlgorithmPlan:
        """Decode (and by default re-verify) the carried plan bundle."""
        if self.plan is None:
            raise ServiceError(f"response has no plan (status={self.status!r})")
        return AlgorithmPlan.from_json(self.plan, verify=verify)

    def to_json(self) -> dict:
        data = {
            "version": API_VERSION,
            "status": self.status,
            "request_key": self.request_key,
            "source": self.source,
            "solve_time_s": self.solve_time_s,
            "wait_time_s": self.wait_time_s,
            "coalesced": self.coalesced,
        }
        if self.plan is not None:
            data["plan"] = self.plan
        if self.route is not None:
            data["route"] = self.route
        if self.error is not None:
            data["error"] = self.error
        if self.error_kind is not None:
            data["error_kind"] = self.error_kind
        return data

    @classmethod
    def from_json(cls, data: dict) -> "PlanResponse":
        if not isinstance(data, dict):
            raise ServiceError("response payload must be a JSON object")
        status = data.get("status")
        if status not in STATUSES:
            raise ServiceError(f"invalid response status {status!r}")
        return cls(
            status=status,
            request_key=str(data.get("request_key", "")),
            plan=data.get("plan"),
            source=str(data.get("source", "")),
            solve_time_s=float(data.get("solve_time_s", 0.0)),
            wait_time_s=float(data.get("wait_time_s", 0.0)),
            coalesced=bool(data.get("coalesced", False)),
            route=data.get("route"),
            error=data.get("error"),
            error_kind=data.get("error_kind"),
        )

    def with_wait(self, wait_time_s: float, *, coalesced: bool) -> "PlanResponse":
        """Per-caller copy of a shared result (broker fan-out)."""
        return replace(self, wait_time_s=wait_time_s, coalesced=coalesced)

    def summary(self) -> str:
        key = self.request_key[:12] + ".." if self.request_key else "?"
        if self.ok:
            extra = " (coalesced)" if self.coalesced else ""
            return (
                f"{key} -> {self.status} from {self.source} in "
                f"{self.solve_time_s:.2f}s (waited {self.wait_time_s:.2f}s){extra}"
            )
        reason = f": {self.error}" if self.error else ""
        return f"{key} -> {self.status}{reason}"


# ----------------------------------------------------------------------
# Fault registration
# ----------------------------------------------------------------------
#: Fault endpoint verbs.
FAULT_ACTIONS = ("register", "clear", "status")


@dataclass(frozen=True)
class FaultRequest:
    """One fault-board mutation or query against a named topology.

    ``register`` merges the carried faults into the board for the topology,
    ``clear`` drops every registered fault, ``status`` reads back the active
    set without mutating anything.  ``faults`` uses the wire form of
    :meth:`repro.faults.FaultSet.to_json`.
    """

    topology: str
    action: str = "status"
    faults: tuple = ()

    def validate(self) -> "FaultRequest":
        if self.action not in FAULT_ACTIONS:
            raise ServiceError(
                f"unknown fault action {self.action!r} (expected one of {FAULT_ACTIONS})"
            )
        if self.action == "register" and not self.faults:
            raise ServiceError("register requires at least one fault")
        if self.action != "register" and self.faults:
            raise ServiceError(f"action {self.action!r} takes no faults")
        self.fault_set()  # raises on malformed fault payloads
        self.resolve_topology()
        return self

    def resolve_topology(self) -> Topology:
        try:
            return parse_topology(self.topology)
        except TopologySpecError as exc:
            raise ServiceError(str(exc)) from exc

    def fault_set(self):
        from ..faults import FaultError, FaultSet

        try:
            return FaultSet.from_json(list(self.faults))
        except FaultError as exc:
            raise ServiceError(str(exc)) from exc

    def to_json(self) -> dict:
        data = {
            "version": API_VERSION,
            "topology": self.topology,
            "action": self.action,
        }
        if self.faults:
            data["faults"] = list(self.faults)
        return data

    @classmethod
    def from_json(cls, data: dict) -> "FaultRequest":
        if not isinstance(data, dict):
            raise ServiceError("fault payload must be a JSON object")
        version = data.get("version", API_VERSION)
        if version != API_VERSION:
            raise ServiceError(f"unsupported request version {version!r}")
        faults = data.get("faults", [])
        if not isinstance(faults, list):
            raise ServiceError("faults must be a list of fault objects")
        try:
            request = cls(
                topology=str(data["topology"]),
                action=str(data.get("action", "status")),
                faults=tuple(faults),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed fault request: {exc}") from exc
        return request.validate()


@dataclass
class FaultResponse:
    """The fault endpoint's answer: the board state after the action."""

    status: str                       # "ok" or "error"
    topology: str = ""
    action: str = ""
    faults: list = field(default_factory=list)   # active FaultSet wire form
    fingerprint: str = ""             # FaultSet.fingerprint() ("" when empty)
    degraded: Optional[Dict[str, object]] = None  # degraded-topology summary
    invalidated: Optional[Dict[str, int]] = None  # routing tables / cache entries dropped
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict:
        data = {
            "version": API_VERSION,
            "status": self.status,
            "topology": self.topology,
            "action": self.action,
            "faults": self.faults,
            "fingerprint": self.fingerprint,
        }
        if self.degraded is not None:
            data["degraded"] = self.degraded
        if self.invalidated is not None:
            data["invalidated"] = self.invalidated
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_json(cls, data: dict) -> "FaultResponse":
        if not isinstance(data, dict):
            raise ServiceError("fault response payload must be a JSON object")
        status = data.get("status")
        if status not in ("ok", "error"):
            raise ServiceError(f"invalid fault response status {status!r}")
        return cls(
            status=status,
            topology=str(data.get("topology", "")),
            action=str(data.get("action", "")),
            faults=list(data.get("faults", [])),
            fingerprint=str(data.get("fingerprint", "")),
            degraded=data.get("degraded"),
            invalidated=data.get("invalidated"),
            error=data.get("error"),
        )

    def summary(self) -> str:
        count = len(self.faults)
        if not self.ok:
            return f"fault {self.action} on {self.topology}: error: {self.error}"
        noun = "fault" if count == 1 else "faults"
        parts = [f"fault {self.action} on {self.topology}: {count} active {noun}"]
        if self.invalidated:
            tables = self.invalidated.get("tables", 0)
            entries = self.invalidated.get("cache_entries", 0)
            parts.append(f"invalidated {tables} tables / {entries} cache entries")
        return "; ".join(parts)

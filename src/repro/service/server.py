"""Stdlib HTTP face of the planning service.

One POST endpoint does the planning; two GETs make the service operable:

``POST /v1/plan``
    Body: :class:`~repro.service.api.PlanRequest` JSON.  Blocks until the
    broker answers (or the request's deadline expires) and returns a
    :class:`~repro.service.api.PlanResponse` JSON.  Identical concurrent
    bodies coalesce into one synthesis.
``GET /healthz``
    Liveness: ``{"status": "ok"}`` once the worker pool is running.
``GET /v1/stats``
    Broker / registry / resolver counters (requests, coalescing ratio,
    cache hit rate) — the numbers the throughput benchmark records.
``GET /v1/metrics``
    The process-wide :mod:`repro.telemetry` registry in Prometheus text
    exposition format (``repro_solver_calls_total``,
    ``repro_broker_requests_total``, ...) — point a scraper at it.

Everything is standard library (``http.server`` + ``urllib``): the
container bakes no web framework, and a ThreadingHTTPServer in front of
the coalescing broker is exactly enough — concurrency is bounded by the
worker pool, not the accept loop.  :func:`request_plan` is the matching
client used by ``repro request``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..telemetry import get_metrics
from .api import (
    DEFAULT_DEADLINE_S,
    FaultRequest,
    FaultResponse,
    PlanRequest,
    PlanResponse,
    ServiceError,
)
from .workers import PlanningService

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8315

#: Server-side ceiling on how long one HTTP request may block.
MAX_WAIT_S = 24 * 3600.0


class PlanningHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`PlanningService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: PlanningService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: PlanningHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        if self.path == "/healthz":
            self._send(200, {"status": "ok"})
        elif self.path == "/v1/stats":
            self._send(200, self.server.service.stats())
        elif self.path == "/v1/metrics":
            self._send_text(
                200, get_metrics().render_prometheus(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._send(404, {"error": f"no such endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path == "/v1/fault":
            self._handle_fault()
            return
        if self.path != "/v1/plan":
            self._send(404, {"error": f"no such endpoint {self.path!r}"})
            return
        try:
            request = PlanRequest.from_json(self._read_body())
        except (ValueError, ServiceError) as exc:
            self._send(400, {"error": str(exc)})
            return
        timeout = request.deadline_s if request.deadline_s is not None else DEFAULT_DEADLINE_S
        timeout = min(timeout, MAX_WAIT_S)
        try:
            response = self.server.service.request(request, timeout=timeout)
        except ServiceError as exc:  # e.g. queue full
            self._send(503, {"error": str(exc)})
            return
        status = 200 if response.ok else (504 if response.status == "timeout" else 422)
        self._send(status, response.to_json())

    def _handle_fault(self) -> None:
        try:
            request = FaultRequest.from_json(self._read_body())
        except (ValueError, ServiceError) as exc:
            self._send(400, {"error": str(exc)})
            return
        response = self.server.service.fault(request)
        self._send(200 if response.ok else 422, response.to_json())

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length) if length else b""
        return json.loads(body.decode("utf-8"))

    # ------------------------------------------------------------------
    def _send(self, status: int, payload: dict) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _send_text(self, status: int, text: str, *, content_type: str) -> None:
        blob = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, format: str, *args) -> None:
        # Quiet by default; the CLI prints its own serving banner.  Errors
        # still surface through the JSON payloads.
        pass


# ----------------------------------------------------------------------
# Lifecycle helpers
# ----------------------------------------------------------------------
def make_server(
    service: PlanningService,
    *,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> PlanningHTTPServer:
    """Bind (``port=0`` picks a free port) — call ``serve_forever`` next."""
    return PlanningHTTPServer((host, port), service)


class ServerThread:
    """Run a :class:`PlanningHTTPServer` on a background thread (tests)."""

    def __init__(self, server: PlanningHTTPServer) -> None:
        self.server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="planning-http", daemon=True
        )

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
def request_plan(
    url: str, request: PlanRequest, *, timeout: Optional[float] = None
) -> PlanResponse:
    """POST a :class:`PlanRequest` to a running service and decode the answer.

    The HTTP timeout is the request deadline plus slack (the server
    enforces the deadline itself and answers with a ``timeout`` response
    we want to receive, not race).
    """
    if timeout is None:
        deadline = request.deadline_s if request.deadline_s is not None else DEFAULT_DEADLINE_S
        timeout = deadline + 10.0
    endpoint = url.rstrip("/") + "/v1/plan"
    body = json.dumps(request.to_json()).encode("utf-8")
    http_request = urllib.request.Request(
        endpoint, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(http_request, timeout=timeout) as reply:
            payload = json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        # 4xx/5xx still carry a JSON body (a PlanResponse or an error dict).
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except ValueError:
            raise ServiceError(f"service returned HTTP {exc.code}") from exc
        if "status" not in payload:
            raise ServiceError(
                f"service rejected the request (HTTP {exc.code}): "
                f"{payload.get('error', '?')}"
            ) from exc
    except (urllib.error.URLError, OSError) as exc:
        raise ServiceError(f"cannot reach planning service at {url}: {exc}") from exc
    return PlanResponse.from_json(payload)


def request_fault(
    url: str, request: FaultRequest, *, timeout: float = 30.0
) -> FaultResponse:
    """POST a :class:`FaultRequest` to a running service (``repro fault``)."""
    endpoint = url.rstrip("/") + "/v1/fault"
    body = json.dumps(request.to_json()).encode("utf-8")
    http_request = urllib.request.Request(
        endpoint, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(http_request, timeout=timeout) as reply:
            payload = json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except ValueError:
            raise ServiceError(f"service returned HTTP {exc.code}") from exc
        if "status" not in payload:
            raise ServiceError(
                f"service rejected the fault request (HTTP {exc.code}): "
                f"{payload.get('error', '?')}"
            ) from exc
    except (urllib.error.URLError, OSError) as exc:
        raise ServiceError(f"cannot reach planning service at {url}: {exc}") from exc
    return FaultResponse.from_json(payload)


def fetch_stats(url: str, *, timeout: float = 10.0) -> dict:
    """GET ``/v1/stats`` from a running service (``repro request --stats``)."""
    endpoint = url.rstrip("/") + "/v1/stats"
    try:
        with urllib.request.urlopen(endpoint, timeout=timeout) as reply:
            return json.loads(reply.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise ServiceError(f"cannot fetch stats from {url}: {exc}") from exc


def fetch_metrics(url: str, *, timeout: float = 10.0) -> str:
    """GET the Prometheus text exposition from ``/v1/metrics``."""
    endpoint = url.rstrip("/") + "/v1/metrics"
    try:
        with urllib.request.urlopen(endpoint, timeout=timeout) as reply:
            return reply.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as exc:
        raise ServiceError(f"cannot fetch metrics from {url}: {exc}") from exc


def check_health(url: str, *, timeout: float = 2.0) -> bool:
    """True when a planning service answers ``/healthz`` at ``url``."""
    try:
        with urllib.request.urlopen(url.rstrip("/") + "/healthz", timeout=timeout) as reply:
            return json.loads(reply.read().decode("utf-8")).get("status") == "ok"
    except Exception:
        return False
